// Command psbench regenerates the paper's tables and figures (DESIGN.md §4)
// at a selectable scale and prints them as text. Use -csv to also write
// machine-readable rows.
//
// Examples:
//
//	psbench -scale test                 # seconds, smoke only
//	psbench -scale default              # minutes, qualitative shapes hold
//	psbench -scale default -exp table2  # one experiment
//	psbench -scale paper                # the full 60k-image workload
//	psbench -quick                      # CI smoke: fast subset + BENCH_test.json
//
// Benchmark output: -bench-json (implied by -quick) writes a machine-readable
// BENCH_<scale>.json with per-experiment wall times and the metric snapshot
// of an instrumented training probe. -metrics and -pprof mirror pssim's
// observability flags.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"parallelspikesim/internal/carlsim"
	"parallelspikesim/internal/core"
	"parallelspikesim/internal/dataset"
	"parallelspikesim/internal/encode"
	"parallelspikesim/internal/engine"
	"parallelspikesim/internal/experiments"
	"parallelspikesim/internal/fixed"
	"parallelspikesim/internal/network"
	"parallelspikesim/internal/obs"
	"parallelspikesim/internal/synapse"
)

// expResult is one per-experiment timing row in BENCH_<scale>.json.
type expResult struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wall_ns"`
}

// plasticityBench is the dense-vs-lazy presentation-throughput comparison
// recorded when -plasticity=lazy: both modes present the same image sequence
// to a 784×1000 network and the ratio of presentation rates is reported.
type plasticityBench struct {
	Inputs        int     `json:"inputs"`
	Neurons       int     `json:"neurons"`
	Presentations int     `json:"presentations"`
	TLearnMS      float64 `json:"tlearn_ms"`
	DenseNs       int64   `json:"dense_ns"`
	LazyNs        int64   `json:"lazy_ns"`
	DensePresSec  float64 `json:"dense_pres_per_sec"`
	LazyPresSec   float64 `json:"lazy_pres_per_sec"`
	Speedup       float64 `json:"speedup"` // dense_ns / lazy_ns
}

// swarBench is the scalar-vs-SWAR kernel comparison: the same
// integrate+potentiate+depress sweep over one synapse matrix, once through
// the per-synapse fixed.Format helpers and once through the word-parallel
// fixed.Packing kernels the sealed synapse.Matrix uses (DESIGN.md §14).
// Both sides must finish in the same weight state; the speedup is pure
// lane parallelism.
type swarBench struct {
	Format        string  `json:"format"`
	Lanes         int     `json:"lanes"`
	Synapses      int     `json:"synapses"`
	Reps          int     `json:"reps"`
	ScalarNs      int64   `json:"scalar_ns"`
	SwarNs        int64   `json:"swar_ns"`
	ScalarMSynSec float64 `json:"scalar_msyn_per_sec"`
	SwarMSynSec   float64 `json:"swar_msyn_per_sec"`
	Speedup       float64 `json:"speedup"` // scalar_ns / swar_ns
}

// encodeBench is the dense-scan vs sparse event-stream encode comparison
// on the paper's input geometry: the same presentation (784 pixels × 1000
// steps, MNIST-like synthetic digit, 0–78 Hz band) encoded once by the
// dense per-step pixel scan (encode.Source.Step) and once through the
// sparse plan builder plus per-step CSR lookups (DESIGN.md §16). Both
// sides must produce the bit-identical spike stream — a divergence fails
// the probe rather than reporting a bogus speedup.
type encodeBench struct {
	Pixels        int     `json:"pixels"`
	Steps         int     `json:"steps"`
	Reps          int     `json:"reps"`
	Spikes        int     `json:"spikes"`
	DenseNs       int64   `json:"dense_ns"`
	SparseNs      int64   `json:"sparse_ns"`
	DenseStepSec  float64 `json:"dense_steps_per_sec"`
	SparseStepSec float64 `json:"sparse_steps_per_sec"`
	Speedup       float64 `json:"speedup"` // dense_ns / sparse_ns
}

// benchDoc is the machine-readable benchmark summary.
type benchDoc struct {
	Schema         string           `json:"schema"`
	Scale          string           `json:"scale"`
	Neurons        int              `json:"neurons"`
	TrainImages    int              `json:"train_images"`
	Workers        int              `json:"workers"`
	Plasticity     string           `json:"plasticity"`
	Batch          int              `json:"batch"`
	Experiments    []expResult      `json:"experiments"`
	BucketBoundsNs []int64          `json:"bucket_bounds_ns"`
	ProbeMetrics   obs.Snapshot     `json:"probe_metrics"`
	PlasticityCmp  *plasticityBench `json:"plasticity_probe,omitempty"`
	SwarCmp        *swarBench       `json:"swar_probe,omitempty"`
	EncodeCmp      *encodeBench     `json:"encode_probe,omitempty"`
}

func main() {
	var (
		scaleName  = flag.String("scale", "default", "test | default | paper")
		expList    = flag.String("exp", "all", "comma-separated experiments: fig1a,fig1c,fig1d,fig4,fig5a,fig5b,fig6a,fig6b,fig7a,fig7b,fig8c,table2,anchor,ablate-noise,ablate-inh,ablate-window,ablate-theta,ablate-tau,scaling")
		csvDir     = flag.String("csv", "", "directory to write CSV rows (optional)")
		neurons    = flag.Int("neurons", 0, "override scale neurons")
		train      = flag.Int("train", 0, "override scale training images")
		workers    = flag.Int("workers", 0, "override engine workers")
		quick      = flag.Bool("quick", false, "CI smoke mode: test scale, fast experiment subset, BENCH_test.json in the current directory")
		benchDir   = flag.String("bench-json", "", "directory to write the BENCH_<scale>.json summary (\"\" = off; -quick defaults to .)")
		metrics    = flag.String("metrics", "", "dump probe metrics to this file, or - for stdout (Prometheus text; *.json for JSON)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
		plasticity = flag.String("plasticity", "dense", "STDP scheduling for the training probe: dense | lazy; lazy also runs the dense-vs-lazy throughput comparison at 784×1000")
		batch      = flag.Int("batch", 0, "prefetch this many spike-train plans concurrently in the training probe (0/1 = off)")
		format     = flag.String("format", "q1.7", "Qm.n format for the scalar-vs-SWAR kernel probe: q0.2 | q0.4 | q1.7 | q1.15 | float32 (float32 skips the probe)")
	)
	flag.Parse()

	plastMode, err := network.ParsePlasticityMode(*plasticity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		os.Exit(1)
	}
	probeFormat, err := fixed.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench:", err)
		os.Exit(1)
	}
	if *batch < 0 {
		fmt.Fprintf(os.Stderr, "psbench: negative -batch %d\n", *batch)
		os.Exit(1)
	}

	if *quick {
		*scaleName = "test"
		if *expList == "all" {
			*expList = "fig1a,fig1c,fig1d,fig6a,anchor"
		}
		if *benchDir == "" {
			*benchDir = "."
		}
	}
	if *pprofAddr != "" {
		addr := *pprofAddr
		//psslint:detached opt-in pprof debug listener; serves until the process exits
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "psbench: pprof server:", err)
			}
		}()
		fmt.Printf("pprof listening on %s\n", addr)
	}

	var scale experiments.Scale
	switch *scaleName {
	case "test":
		scale = experiments.TestScale()
	case "default":
		scale = experiments.DefaultScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "psbench: unknown scale %q\n", *scaleName)
		os.Exit(1)
	}
	if *neurons > 0 {
		scale.Neurons = *neurons
	}
	if *train > 0 {
		scale.TrainImages = *train
	}
	if *workers > 0 {
		scale.Workers = *workers
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	writeCSV := func(name string, header []string, rows [][]string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			return
		}
		defer f.Close()
		w := csv.NewWriter(f)
		_ = w.Write(header)
		_ = w.WriteAll(rows)
		w.Flush()
	}

	fmt.Printf("psbench scale=%s: %d neurons, %d train / %d label / %d infer images\n\n",
		*scaleName, scale.Neurons, scale.TrainImages, scale.LabelImages, scale.InferImages)

	var benchRows []expResult
	run := func(name string, fn func() (string, error)) {
		if !sel(name) {
			return
		}
		start := time.Now()
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "psbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		benchRows = append(benchRows, expResult{Name: name, WallNs: wall.Nanoseconds()})
		fmt.Printf("=== %s (%v) ===\n%s\n", name, wall.Round(time.Millisecond), out)
	}

	run("fig1a", func() (string, error) {
		res, err := experiments.FigLIFCurve(nil)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for i := range res.Currents {
			rows = append(rows, []string{
				fmt.Sprintf("%g", res.Currents[i]),
				fmt.Sprintf("%g", res.Measured[i]),
				fmt.Sprintf("%g", res.Analytic[i]),
			})
		}
		writeCSV("fig1a", []string{"current", "measured_hz", "analytic_hz"}, rows)
		return res.Render(), nil
	})

	run("fig1c", func() (string, error) {
		cfg, _, err := synapse.PresetConfig(synapse.PresetFloat, synapse.Stochastic)
		if err != nil {
			return "", err
		}
		res, err := experiments.FigSTDPCurves(cfg.Stoch, 100, 5)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for i := range res.Pot {
			rows = append(rows, []string{
				fmt.Sprintf("%g", res.Pot[i].X), fmt.Sprintf("%g", res.Pot[i].Y),
				fmt.Sprintf("%g", res.Dep[i].X), fmt.Sprintf("%g", res.Dep[i].Y),
			})
		}
		writeCSV("fig1c", []string{"dt_pot", "p_pot", "dt_dep", "p_dep"}, rows)
		return res.Render(), nil
	})

	run("fig1d", func() (string, error) {
		res, err := experiments.FigEncoding(encode.BaselineBand())
		if err != nil {
			return "", err
		}
		var rows [][]string
		for _, p := range res.Points {
			rows = append(rows, []string{fmt.Sprintf("%g", p.X), fmt.Sprintf("%g", p.Y)})
		}
		writeCSV("fig1d", []string{"intensity", "hz"}, rows)
		return res.Render(), nil
	})

	run("fig4", func() (string, error) {
		cfg := carlsim.DefaultConfig()
		res, err := experiments.FigActivityComparison(cfg, 1000, scale.Workers)
		if err != nil {
			return "", err
		}
		writeCSV("fig4", []string{"simulator", "total_spikes", "mean_hz", "wall_ns"}, [][]string{
			{"reference", strconv.FormatUint(res.Reference.TotalSpikes, 10), fmt.Sprintf("%g", res.Reference.MeanRateHz), strconv.FormatInt(int64(res.Reference.Wall), 10)},
			{"mirror_seq", strconv.FormatUint(res.MirrorSeq.TotalSpikes, 10), fmt.Sprintf("%g", res.MirrorSeq.MeanRateHz), strconv.FormatInt(int64(res.MirrorSeq.Wall), 10)},
			{"mirror_par", strconv.FormatUint(res.MirrorPar.TotalSpikes, 10), fmt.Sprintf("%g", res.MirrorPar.MeanRateHz), strconv.FormatInt(int64(res.MirrorPar.Wall), 10)},
		})
		return res.Render(), nil
	})

	run("fig5a", func() (string, error) {
		res, err := experiments.FigConductanceMaps(scale, 4)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for _, e := range res.Entries {
			rows = append(rows, []string{string(e.Data), e.Rule.String(), fmt.Sprintf("%g", e.Accuracy)})
		}
		writeCSV("fig5a", []string{"data", "rule", "accuracy"}, rows)
		return res.Render(), nil
	})

	run("fig5b", func() (string, error) {
		res, err := experiments.FigFrequencyMaps(scale, nil, 4)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for i, b := range res.Bands {
			rows = append(rows, []string{fmt.Sprintf("%g", b.MaxHz), fmt.Sprintf("%g", res.Accuracies[i])})
		}
		writeCSV("fig5b", []string{"fmax_hz", "accuracy"}, rows)
		return res.Render(), nil
	})

	run("fig6a", func() (string, error) {
		res, err := experiments.FigRasters(scale, 200)
		if err != nil {
			return "", err
		}
		writeCSV("fig6a", []string{"band", "spikes"}, [][]string{
			{"low", strconv.Itoa(res.LowSpikes)},
			{"high", strconv.Itoa(res.HighSpikes)},
		})
		return res.Render(), nil
	})

	run("fig6b", func() (string, error) {
		res, err := experiments.FigConductanceHistogram(scale, 32)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for i := range res.Stochastic.Counts {
			rows = append(rows, []string{
				fmt.Sprintf("%g", res.Stochastic.BinCenter(i)),
				strconv.Itoa(res.Stochastic.Counts[i]),
				strconv.Itoa(res.Deterministic.Counts[i]),
			})
		}
		writeCSV("fig6b", []string{"g", "stochastic_count", "deterministic_count"}, rows)
		return res.Render(), nil
	})

	run("fig7a", func() (string, error) {
		res, err := experiments.FigAccuracyVsFrequency(scale, nil)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for _, row := range res.Rows {
			rows = append(rows, []string{row.Rule.String(), fmt.Sprintf("%g", row.MaxHz),
				fmt.Sprintf("%g", row.Accuracy), fmt.Sprintf("%g", row.AccuracyLoss)})
		}
		writeCSV("fig7a", []string{"rule", "fmax_hz", "accuracy", "loss"}, rows)
		return res.Render(), nil
	})

	run("fig7b", func() (string, error) {
		res, err := experiments.FigAccuracyVsRuntime(scale)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for _, row := range res.Rows {
			rows = append(rows, []string{row.Name, fmt.Sprintf("%g", row.Accuracy),
				strconv.FormatInt(int64(row.TrainWall), 10), fmt.Sprintf("%g", row.Speedup)})
		}
		writeCSV("fig7b", []string{"configuration", "accuracy", "train_wall_ns", "speedup"}, rows)
		return res.Render(), nil
	})

	run("fig8c", func() (string, error) {
		res, err := experiments.FigMovingError(scale)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for i := range res.Baseline {
			hf := ""
			if i < len(res.HighFreq) {
				hf = fmt.Sprintf("%g", res.HighFreq[i])
			}
			rows = append(rows, []string{strconv.Itoa(i), fmt.Sprintf("%g", res.Baseline[i]), hf})
		}
		writeCSV("fig8c", []string{"image", "baseline_error", "highfreq_error"}, rows)
		return res.Render(), nil
	})

	run("table2", func() (string, error) {
		res, err := experiments.TableRounding(scale)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for _, row := range res.Rows {
			rows = append(rows, []string{row.Rule.String(), row.Format.String(),
				row.Rounding.String(), fmt.Sprintf("%g", row.Accuracy)})
		}
		writeCSV("table2", []string{"rule", "format", "rounding", "accuracy"}, rows)
		return res.Render(), nil
	})

	run("ablate-inh", func() (string, error) {
		res, err := experiments.AblateInhibition(scale, nil)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for _, row := range res.Rows {
			rows = append(rows, []string{fmt.Sprintf("%g", row.Value), fmt.Sprintf("%g", row.Accuracy)})
		}
		writeCSV("ablate_inh", []string{"tinh_ms", "accuracy"}, rows)
		return res.Render(), nil
	})

	run("ablate-window", func() (string, error) {
		res, err := experiments.AblateWindow(scale, nil)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for _, row := range res.Rows {
			rows = append(rows, []string{fmt.Sprintf("%g", row.Value), fmt.Sprintf("%g", row.Accuracy)})
		}
		writeCSV("ablate_window", []string{"window_ms", "accuracy"}, rows)
		return res.Render(), nil
	})

	run("ablate-theta", func() (string, error) {
		res, err := experiments.AblateHomeostasis(scale)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for _, row := range res.Rows {
			rows = append(rows, []string{row.Label, fmt.Sprintf("%g", row.Accuracy)})
		}
		writeCSV("ablate_theta", []string{"setting", "accuracy"}, rows)
		return res.Render(), nil
	})

	run("ablate-tau", func() (string, error) {
		res, err := experiments.AblateSynapticTrace(scale, nil)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for _, row := range res.Rows {
			rows = append(rows, []string{fmt.Sprintf("%g", row.Value), fmt.Sprintf("%g", row.Accuracy)})
		}
		writeCSV("ablate_tau", []string{"tau_ms", "accuracy"}, rows)
		return res.Render(), nil
	})

	run("ablate-noise", func() (string, error) {
		res, err := experiments.AblateNoise(scale)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for _, row := range res.Rows {
			rows = append(rows, []string{row.Corruption,
				fmt.Sprintf("%g", row.Det), fmt.Sprintf("%g", row.Stoch)})
		}
		writeCSV("ablate_noise", []string{"corruption", "deterministic", "stochastic"}, rows)
		return res.Render(), nil
	})

	run("scaling", func() (string, error) {
		res, err := experiments.AblateParallelScaling(scale, nil)
		if err != nil {
			return "", err
		}
		var rows [][]string
		for _, row := range res.Rows {
			rows = append(rows, []string{strconv.Itoa(row.Workers),
				strconv.FormatInt(int64(row.Wall), 10), fmt.Sprintf("%g", row.Speedup)})
		}
		writeCSV("scaling", []string{"workers", "wall_ns", "speedup"}, rows)
		return res.Render(), nil
	})

	run("anchor", func() (string, error) {
		res, err := experiments.TableBaselineAnchor(scale, 3)
		if err != nil {
			return "", err
		}
		writeCSV("anchor", []string{"data", "rule", "accuracy"}, [][]string{
			{"digits", "deterministic", fmt.Sprintf("%g", res.BaselineAccuracy)},
			{"digits", "stochastic", fmt.Sprintf("%g", res.StochasticAccuracy)},
			{"fashion", "deterministic", fmt.Sprintf("%g", res.FashionBaseline)},
			{"fashion", "stochastic", fmt.Sprintf("%g", res.FashionStochastic)},
		})
		return res.Render(), nil
	})

	if *benchDir == "" && *metrics == "" {
		return
	}

	// Instrumented probe: a small observed training run whose per-phase
	// histograms and counters anchor the benchmark summary and feed -metrics.
	reg := obs.NewRegistry()
	probeNeurons := scale.Neurons
	if probeNeurons > 32 {
		probeNeurons = 32
	}
	probeImages := scale.TrainImages
	if probeImages > 128 {
		probeImages = 128
	}
	ds := dataset.SynthDigits(probeImages, 11)
	sim, err := core.New(core.Options{
		Inputs:     ds.Pixels(),
		Neurons:    probeNeurons,
		Workers:    scale.Workers,
		Classes:    ds.NumClasses,
		Observer:   reg,
		Plasticity: plastMode,
		Batch:      *batch,
		Seed:       11,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench: probe:", err)
		os.Exit(1)
	}
	probeStart := time.Now()
	if err := sim.Train(ds, nil); err != nil {
		fmt.Fprintln(os.Stderr, "psbench: probe:", err)
		os.Exit(1)
	}
	sim.Close()
	fmt.Printf("probe: trained %d images × %d neurons in %v (instrumented)\n",
		probeImages, probeNeurons, time.Since(probeStart).Round(time.Millisecond))

	var plastCmp *plasticityBench
	if plastMode == network.LazyPlasticity {
		cmp, err := plasticityThroughput(scale.Workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbench: plasticity probe:", err)
			os.Exit(1)
		}
		plastCmp = &cmp
		fmt.Printf("plasticity %dx%d: dense %.1f pres/s, lazy %.1f pres/s — %.2fx\n",
			cmp.Inputs, cmp.Neurons, cmp.DensePresSec, cmp.LazyPresSec, cmp.Speedup)
	}

	var swarCmp *swarBench
	if probeFormat.Packable() {
		sw, err := swarProbe(probeFormat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbench: swar probe:", err)
			os.Exit(1)
		}
		swarCmp = &sw
		fmt.Printf("swar %s (%d lanes/word): scalar %.1f Msyn/s, packed %.1f Msyn/s — %.2fx\n",
			sw.Format, sw.Lanes, sw.ScalarMSynSec, sw.SwarMSynSec, sw.Speedup)
	} else {
		fmt.Printf("swar probe skipped: %s has no packed representation\n", probeFormat)
	}

	encCmp, err := encodeProbe()
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbench: encode probe:", err)
		os.Exit(1)
	}
	fmt.Printf("encode %d×%d: dense %.2f ms, sparse %.2f ms — %.2fx (%d spikes)\n",
		encCmp.Pixels, encCmp.Steps,
		float64(encCmp.DenseNs)/1e6, float64(encCmp.SparseNs)/1e6,
		encCmp.Speedup, encCmp.Spikes)

	snap := reg.Snapshot()
	if *benchDir != "" {
		if err := os.MkdirAll(*benchDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
		path := filepath.Join(*benchDir, fmt.Sprintf("BENCH_%s.json", *scaleName))
		if err := writeBench(path, benchDoc{
			Schema:         "psbench-bench/v1",
			Scale:          *scaleName,
			Neurons:        scale.Neurons,
			TrainImages:    scale.TrainImages,
			Workers:        scale.Workers,
			Plasticity:     plastMode.String(),
			Batch:          *batch,
			Experiments:    benchRows,
			BucketBoundsNs: obs.BucketBoundsNs,
			ProbeMetrics:   snap,
			PlasticityCmp:  plastCmp,
			SwarCmp:        swarCmp,
			EncodeCmp:      &encCmp,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "psbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *metrics != "" {
		if err := dumpMetrics(*metrics, snap); err != nil {
			fmt.Fprintln(os.Stderr, "psbench: metrics dump:", err)
			os.Exit(1)
		}
	}
}

// plasticityThroughput measures presentation throughput of the dense and
// lazy STDP schedules on the paper's default geometry (784 inputs × 1000
// neurons). Both modes present the identical image sequence with learning
// enabled — the golden suite already proves they compute the same result,
// so the only difference is wall time. Lateral inhibition is ablated
// (TInhMS = 0, the existing no-WTA ablation) so every threshold crosser
// fires and STDP becomes the dominant phase: with the default WTA there
// are only a handful of post spikes per presentation and plasticity
// scheduling is invisible in the total. The deterministic 8-bit operating
// point makes plasticity memory-bound (every post spike moves every
// synapse by a constant grid step), which is where the dense path's
// column-strided walks hurt most and the lazy path's row-contiguous
// replays help most.
func plasticityThroughput(workers int) (plasticityBench, error) {
	const (
		inputs        = 784
		neurons       = 1000
		presentations = 8
		warmup        = 1
	)
	syn, _, err := synapse.PresetConfig(synapse.Preset8Bit, synapse.Deterministic)
	if err != nil {
		return plasticityBench{}, err
	}
	syn.Seed = 7
	cfg := network.DefaultConfig(inputs, neurons, syn)
	cfg.TInhMS = 0 // ablate WTA: plasticity-dominated workload
	ctl := encode.BaselineControl()
	// A small image set cycled repeatedly keeps the network resonant with
	// the patterns it is learning, sustaining a high post-spike rate across
	// every timed presentation — the steady state the probe is after. A
	// long distinct-image sequence would let homeostasis quiet the layer
	// down and dilute plasticity with encode/integrate time.
	ds := dataset.SynthDigits(4, 5)
	if workers == 0 {
		workers = engine.Auto
	}

	measure := func(mode network.PlasticityMode) (time.Duration, error) {
		exec := engine.New(workers)
		defer exec.Close()
		net, err := network.New(cfg, network.WithExecutor(exec), network.WithPlasticity(mode))
		if err != nil {
			return 0, err
		}
		for i := 0; i < warmup; i++ {
			if _, err := net.Present(ds.Images[i%ds.Len()], ctl, true, nil); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := warmup; i < warmup+presentations; i++ {
			if _, err := net.Present(ds.Images[i%ds.Len()], ctl, true, nil); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	// Best of three interleaved trials per mode: the min filters out CPU
	// steal and scheduler noise on shared runners, and interleaving keeps
	// slow machine phases from landing entirely on one mode. Each trial
	// rebuilds its network, so both modes always start from the same
	// initial weights.
	const trials = 3
	denseWall, lazyWall := time.Duration(0), time.Duration(0)
	for trial := 0; trial < trials; trial++ {
		d, err := measure(network.DensePlasticity)
		if err != nil {
			return plasticityBench{}, err
		}
		l, err := measure(network.LazyPlasticity)
		if err != nil {
			return plasticityBench{}, err
		}
		if trial == 0 || d < denseWall {
			denseWall = d
		}
		if trial == 0 || l < lazyWall {
			lazyWall = l
		}
	}
	persec := func(d time.Duration) float64 {
		return float64(presentations) / d.Seconds()
	}
	return plasticityBench{
		Inputs:        inputs,
		Neurons:       neurons,
		Presentations: presentations,
		TLearnMS:      ctl.TLearnMS,
		DenseNs:       denseWall.Nanoseconds(),
		LazyNs:        lazyWall.Nanoseconds(),
		DensePresSec:  persec(denseWall),
		LazyPresSec:   persec(lazyWall),
		Speedup:       float64(denseWall) / float64(lazyWall),
	}, nil
}

// swarProbe times the same integrate+plasticity sweep twice over a
// 784×1024 synapse matrix: a scalar pass through the per-synapse
// fixed.Format helpers (one AddSat/SubSat call and one float accumulate per
// synapse — the code path before the packed store), and a SWAR pass through
// the fixed.Packing word kernels (one AccumulateRange/AddSatMasked/
// SubSatMasked call per row). Each rep is one full-matrix presentation:
// integrate every row into the current vector, potentiate every synapse one
// step, depress it back one step. The select mask is built once, mirroring
// how the lazy queue amortises mask construction across a row's events.
// Both passes must end in the bit-identical weight state — the kernels'
// contract — so a divergence fails the probe rather than reporting a bogus
// speedup. Best of three interleaved trials per side, as in
// plasticityThroughput.
func swarProbe(f fixed.Format) (swarBench, error) {
	const (
		nPre  = 784
		nPost = 1024 // multiple of every lane count, so rows stay word-aligned
		reps  = 4
		amp   = 0.6
	)
	pk, err := f.Packing()
	if err != nil {
		return swarBench{}, err
	}
	nSyn := nPre * nPost
	maxCode := f.ToCode(f.Max())
	codes := make([]uint32, nSyn)
	for i := range codes {
		codes[i] = uint32(i) % (maxCode + 1) // sweep the whole code range incl. both saturation rails
	}
	wpr := pk.WordsFor(nPost)

	scalarPass := func() (time.Duration, []float64) {
		g := make([]fixed.Weight, nSyn)
		for i, c := range codes {
			g[i] = fixed.Weight(f.FromCode(c))
		}
		cur := make([]float64, nPost)
		step, ceil := f.Step(), f.Max()
		start := time.Now()
		for r := 0; r < reps; r++ {
			for pre := 0; pre < nPre; pre++ {
				row := g[pre*nPost : (pre+1)*nPost]
				for i, w := range row {
					cur[i] += float64(w) * amp
				}
				for i := range row {
					row[i] = f.AddSat(row[i], step, ceil, fixed.Nearest, 0)
				}
				for i := range row {
					row[i] = f.SubSat(row[i], step, 0, fixed.Nearest, 0)
				}
			}
		}
		wall := time.Since(start)
		out := make([]float64, nSyn)
		for i, w := range g {
			out[i] = float64(w)
		}
		return wall, out
	}

	swarPass := func() (time.Duration, []float64) {
		words := pk.Pack(codes)
		cur := make([]float64, nPost)
		sel := pk.NewSelect(nPost)
		for i := 0; i < nPost; i++ {
			pk.SetLane(sel, i)
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			for pre := 0; pre < nPre; pre++ {
				row := words[pre*wpr : (pre+1)*wpr]
				pk.AccumulateRange(row, amp, cur, 0, nPost)
				pk.AddSatMasked(row, sel, maxCode)
				pk.SubSatMasked(row, sel, 0)
			}
		}
		wall := time.Since(start)
		out := make([]float64, 0, nSyn)
		for _, c := range pk.Unpack(words, nSyn, nil) {
			out = append(out, f.FromCode(c))
		}
		return wall, out
	}

	const trials = 3
	var scalarWall, swarWall time.Duration
	var scalarG, swarG []float64
	for trial := 0; trial < trials; trial++ {
		sd, sg := scalarPass()
		wd, wg := swarPass()
		if trial == 0 {
			scalarG, swarG = sg, wg
			scalarWall, swarWall = sd, wd
			continue
		}
		if sd < scalarWall {
			scalarWall = sd
		}
		if wd < swarWall {
			swarWall = wd
		}
	}
	for i := range scalarG {
		if scalarG[i] != swarG[i] {
			return swarBench{}, fmt.Errorf("scalar and packed kernels diverged at synapse %d: %v vs %v",
				i, scalarG[i], swarG[i])
		}
	}
	msyn := func(d time.Duration) float64 {
		return float64(nSyn) * reps / d.Seconds() / 1e6
	}
	return swarBench{
		Format:        f.String(),
		Lanes:         pk.Lanes(),
		Synapses:      nSyn,
		Reps:          reps,
		ScalarNs:      scalarWall.Nanoseconds(),
		SwarNs:        swarWall.Nanoseconds(),
		ScalarMSynSec: msyn(scalarWall),
		SwarMSynSec:   msyn(swarWall),
		Speedup:       float64(scalarWall) / float64(swarWall),
	}, nil
}

// encodeProbe times one full presentation's spike encoding twice: the dense
// per-step scan over all pixels (the code path before the sparse event
// stream), and the sparse plan build plus per-step CSR lookups the network
// now runs on. The image is an MNIST-like synthetic digit — mostly silent
// background with a minority of ink pixels — over the paper's 0–78 Hz
// high-frequency band, so the sparse side's cost scales with active pixels
// and spikes per step while the dense side pays for the whole field every
// step. Both sides must produce the bit-identical spike stream. Best of
// three interleaved trials per side, as in swarProbe.
func encodeProbe() (encodeBench, error) {
	const (
		pixels = 28 * 28
		steps  = 1000
		reps   = 4
		dt     = 1.0
		seed   = 0xe5c0de
	)
	img := dataset.SynthDigits(1, seed).Images[0]
	if len(img) != pixels {
		return encodeBench{}, fmt.Errorf("synthetic digit has %d pixels, want %d", len(img), pixels)
	}
	band := encode.Band{MinHz: 0, MaxHz: 78}
	src, err := encode.NewSource(img, band, encode.Poisson, seed, 0)
	if err != nil {
		return encodeBench{}, err
	}

	// Reference spike stream for the bit-identity check, built outside the
	// timed region.
	src.Prepare(dt)
	want := make([][]int, steps)
	total := 0
	for st := 0; st < steps; st++ {
		want[st] = src.Step(uint64(st), dt, nil)
		total += len(want[st])
	}

	densePass := func() time.Duration {
		buf := make([]int, 0, pixels)
		start := time.Now()
		for r := 0; r < reps; r++ {
			src.Prepare(dt)
			for st := 0; st < steps; st++ {
				buf = src.Step(uint64(st), dt, buf[:0])
			}
		}
		return time.Since(start)
	}

	var plan *encode.Plan
	sparsePass := func() (time.Duration, error) {
		buf := make([]int, 0, pixels)
		var mismatch error
		start := time.Now()
		for r := 0; r < reps; r++ {
			plan = src.BuildPlanInto(plan, 0, dt, steps, band)
			for st := 0; st < steps; st++ {
				buf = plan.Step(st, buf[:0])
				if len(buf) != len(want[st]) && mismatch == nil {
					mismatch = fmt.Errorf("sparse step %d holds %d spikes, dense %d",
						st, len(buf), len(want[st]))
				}
			}
		}
		return time.Since(start), mismatch
	}

	const trials = 3
	var denseWall, sparseWall time.Duration
	for trial := 0; trial < trials; trial++ {
		dd := densePass()
		sd, err := sparsePass()
		if err != nil {
			return encodeBench{}, err
		}
		if trial == 0 || dd < denseWall {
			denseWall = dd
		}
		if trial == 0 || sd < sparseWall {
			sparseWall = sd
		}
	}

	// Full bit-identity, not just counts: every (step, pixel) event of the
	// final sparse plan must match the dense reference exactly.
	var buf []int
	for st := 0; st < steps; st++ {
		buf = plan.Step(st, buf[:0])
		if len(buf) != len(want[st]) {
			return encodeBench{}, fmt.Errorf("sparse step %d holds %d spikes, dense %d",
				st, len(buf), len(want[st]))
		}
		for i, px := range want[st] {
			if buf[i] != px {
				return encodeBench{}, fmt.Errorf("sparse step %d event %d is pixel %d, dense %d",
					st, i, buf[i], px)
			}
		}
	}

	stepsSec := func(d time.Duration) float64 {
		return float64(steps) * reps / d.Seconds()
	}
	return encodeBench{
		Pixels:        pixels,
		Steps:         steps,
		Reps:          reps,
		Spikes:        total,
		DenseNs:       denseWall.Nanoseconds(),
		SparseNs:      sparseWall.Nanoseconds(),
		DenseStepSec:  stepsSec(denseWall),
		SparseStepSec: stepsSec(sparseWall),
		Speedup:       float64(denseWall) / float64(sparseWall),
	}, nil
}

// writeBench writes the benchmark summary as indented JSON.
func writeBench(path string, doc benchDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// dumpMetrics writes the snapshot to a file or stdout ("-"), Prometheus
// text by default and JSON for *.json paths.
func dumpMetrics(target string, snap obs.Snapshot) error {
	if target == "-" {
		return snap.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(target)
	if err != nil {
		return err
	}
	if strings.HasSuffix(target, ".json") {
		err = snap.WriteJSON(f)
	} else {
		err = snap.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
