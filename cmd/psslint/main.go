// Command psslint is ParallelSpikeSim's multichecker: it runs the custom
// analyzers from internal/lint over the given package patterns and exits
// non-zero on any finding, so CI can gate merges on the simulator's
// machine-checkable invariants.
//
// Usage:
//
//	go run ./cmd/psslint ./...                 # full analyzer suite
//	go run ./cmd/psslint -deprecated ./...     # one analyzer
//	go run ./cmd/psslint -rcuimmut -golifecycle -hotalloc ./...
//	go run ./cmd/psslint -escape ./...         # compiler escape-analysis gate
//	go run ./cmd/psslint -escape -baseline scripts/allocs-baseline.txt ./...
//
// Selecting one or more analyzer flags runs only those; with no analyzer
// flags the full suite runs. -escape is a separate mode: instead of the AST
// analyzers it recompiles the //psslint:noalloc packages with -gcflags=-m
// and fails on any heap escape inside an annotated function; -baseline
// additionally verifies that every function listed in the committed
// baseline is still annotated (the ratchet cannot be loosened silently).
// Exit codes: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"parallelspikesim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("psslint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: psslint [-deprecated] [-fixedrange] [-detrand] [-ioerr] [-rcuimmut] [-golifecycle] [-hotalloc] packages...")
		fmt.Fprintln(fs.Output(), "       psslint -escape [-baseline file] packages...")
		fs.PrintDefaults()
	}
	selected := make(map[string]*bool)
	for _, a := range lint.Analyzers() {
		selected[a.Name] = fs.Bool(a.Name, false, "run only selected analyzers: "+a.Doc)
	}
	escape := fs.Bool("escape", false, "run the compiler escape-analysis gate over //psslint:noalloc functions instead of the AST analyzers")
	baseline := fs.String("baseline", "", "with -escape: verify every function in this baseline file is still annotated //psslint:noalloc")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "psslint:", err)
		return 2
	}

	if *escape {
		return runEscape(cwd, *baseline, patterns)
	}

	analyzers := lint.Analyzers()
	var chosen []*lint.Analyzer
	for _, a := range analyzers {
		if *selected[a.Name] {
			chosen = append(chosen, a)
		}
	}
	if len(chosen) == 0 {
		chosen = analyzers
	}

	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psslint:", err)
		return 2
	}
	diags, err := lint.Run(pkgs, chosen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psslint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "psslint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runEscape drives the -escape mode: compiler escape analysis over the
// annotated functions, plus the optional baseline ratchet.
func runEscape(cwd, baseline string, patterns []string) int {
	diags, funcs, err := lint.EscapeCheck(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psslint:", err)
		return 2
	}
	findings := 0
	for _, d := range diags {
		fmt.Println(d)
		findings++
	}
	if baseline != "" {
		missing, err := lint.CheckNoAllocBaseline(baseline, cwd, funcs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psslint:", err)
			return 2
		}
		for _, m := range missing {
			fmt.Printf("%s: baseline function no longer annotated //psslint:noalloc (escape)\n", m)
			findings++
		}
	}
	fmt.Fprintf(os.Stderr, "psslint -escape: %d annotated function(s) checked\n", len(funcs))
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "psslint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
