// Command psslint is ParallelSpikeSim's multichecker: it runs the custom
// analyzers from internal/lint over the given package patterns and exits
// non-zero on any finding, so CI can gate merges on the simulator's
// machine-checkable invariants.
//
// Usage:
//
//	go run ./cmd/psslint ./...                 # full suite
//	go run ./cmd/psslint -deprecated ./...     # one analyzer
//	go run ./cmd/psslint -detrand -ioerr ./...
//
// Selecting one or more analyzer flags runs only those; with no analyzer
// flags the full suite runs. Exit codes: 0 clean, 1 findings, 2 usage or
// load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"parallelspikesim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("psslint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: psslint [-deprecated] [-fixedrange] [-detrand] [-ioerr] packages...")
		fs.PrintDefaults()
	}
	selected := make(map[string]*bool)
	for _, a := range lint.Analyzers() {
		selected[a.Name] = fs.Bool(a.Name, false, "run only selected analyzers: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	analyzers := lint.Analyzers()
	var chosen []*lint.Analyzer
	for _, a := range analyzers {
		if *selected[a.Name] {
			chosen = append(chosen, a)
		}
	}
	if len(chosen) == 0 {
		chosen = analyzers
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "psslint:", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psslint:", err)
		return 2
	}
	diags, err := lint.Run(pkgs, chosen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psslint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "psslint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
