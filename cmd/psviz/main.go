// Command psviz trains a small network and dumps its artifacts to files:
// conductance maps (ASCII and PGM, the Fig 5 / Fig 8a visualizations) and
// input/neuron spike rasters (Fig 6a).
//
// Example:
//
//	psviz -out ./viz -data fashion -rule stochastic -train 1500
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parallelspikesim/internal/dataset"
	"parallelspikesim/internal/encode"
	"parallelspikesim/internal/engine"
	"parallelspikesim/internal/learn"
	"parallelspikesim/internal/network"
	"parallelspikesim/internal/synapse"
	"parallelspikesim/internal/viz"
)

func main() {
	var (
		out     = flag.String("out", "viz-out", "output directory")
		data    = flag.String("data", "digits", "digits | fashion")
		rule    = flag.String("rule", "stochastic", "deterministic | stochastic")
		neurons = flag.Int("neurons", 64, "first-layer neurons")
		nTrain  = flag.Int("train", 1000, "training images")
		maps    = flag.Int("maps", 16, "conductance maps to dump")
		seed    = flag.Uint64("seed", 7, "master seed")
	)
	flag.Parse()
	if err := run(*out, *data, *rule, *neurons, *nTrain, *maps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "psviz:", err)
		os.Exit(1)
	}
}

func run(out, data, rule string, neurons, nTrain, maps int, seed uint64) error {
	kind, err := synapse.ParseRule(rule)
	if err != nil {
		return err
	}
	var train *dataset.Dataset
	switch data {
	case "digits":
		train = dataset.SynthDigits(nTrain, seed)
	case "fashion":
		train = dataset.SynthFashion(nTrain, seed)
	default:
		return fmt.Errorf("unknown data set %q", data)
	}

	syn, band, err := synapse.PresetConfig(synapse.PresetFloat, kind)
	if err != nil {
		return err
	}
	syn.Seed = seed
	cfg := network.DefaultConfig(train.Pixels(), neurons, syn)
	pool := engine.New(engine.Auto)
	defer pool.Close()
	net, err := network.New(cfg, network.WithExecutor(pool))
	if err != nil {
		return err
	}
	opts := learn.DefaultOptions()
	opts.Control.Band = encode.Band{MinHz: band.MinHz, MaxHz: band.MaxHz}
	opts.NumClasses = train.NumClasses
	tr, err := learn.New(net, opts)
	if err != nil {
		return err
	}
	fmt.Printf("psviz: training %s/%s on %d images…\n", data, rule, train.Len())
	if err := tr.Train(train, nil); err != nil {
		return err
	}

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	// Conductance maps.
	rf := make([]float64, train.Pixels())
	var tiles []string
	for n := 0; n < maps && n < neurons; n++ {
		net.Syn.Column(n, rf)
		ascii, err := viz.ConductanceASCII(rf, train.Width, train.Height)
		if err != nil {
			return err
		}
		tiles = append(tiles, ascii)
		pgm, err := viz.ConductancePGM(rf, train.Width, train.Height)
		if err != nil {
			return err
		}
		name := filepath.Join(out, fmt.Sprintf("rf_%03d.pgm", n))
		if err := os.WriteFile(name, pgm, 0o644); err != nil {
			return err
		}
	}
	if err := os.WriteFile(filepath.Join(out, "maps.txt"), []byte(viz.TileGrid(tiles, 4)), 0o644); err != nil {
		return err
	}

	// Moving-error curve as SVG (Fig 8c style).
	curve := tr.MovingErrorCurve()
	xs := make([]float64, len(curve))
	for i := range xs {
		xs[i] = float64(i)
	}
	svg, err := viz.SVGChart("moving error rate", "training images", "error",
		[]viz.Series{{Name: rule, X: xs, Y: curve}}, 720, 400)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(out, "moving_error.svg"), []byte(svg), 0o644); err != nil {
		return err
	}

	// Rasters: one more presentation with recording enabled.
	rec := &network.Recorder{}
	if _, err := net.Present(train.Images[0], opts.Control, false, rec); err != nil {
		return err
	}
	raster := "input spikes:\n" +
		viz.RasterASCII(rec.InputSpikes, train.Pixels(), opts.Control.TLearnMS, opts.Control.TLearnMS/100, 48) +
		"\nneuron spikes:\n" +
		viz.RasterASCII(rec.NeuronSpikes, neurons, opts.Control.TLearnMS, opts.Control.TLearnMS/100, 48)
	if err := os.WriteFile(filepath.Join(out, "raster.txt"), []byte(raster), 0o644); err != nil {
		return err
	}

	fmt.Printf("psviz: wrote %d PGM maps, maps.txt, moving_error.svg and raster.txt to %s\n", len(tiles), out)
	return nil
}
