package main

import (
	"fmt"
	"math"
	"sort"

	"parallelspikesim/internal/dataset"
	"parallelspikesim/internal/network"
)

// diagnose prints per-class winner consistency and receptive-field contrast.
func diagnose(net *network.Network, train *dataset.Dataset, winnersByClass map[int]map[int]int) {
	for c := 0; c < 10; c++ {
		w := winnersByClass[c]
		type kv struct{ n, cnt int }
		var list []kv
		tot := 0
		for n, cnt := range w {
			list = append(list, kv{n, cnt})
			tot += cnt
		}
		sort.Slice(list, func(i, j int) bool { return list[i].cnt > list[j].cnt })
		top := ""
		for i := 0; i < len(list) && i < 3; i++ {
			top += fmt.Sprintf(" n%d:%d", list[i].n, list[i].cnt)
		}
		fmt.Printf("class %d: %d wins, top%s\n", c, tot, top)
	}
	// RF contrast: ratio of top-quartile to bottom-quartile conductance.
	rf := make([]float64, train.Pixels())
	var contrasts []float64
	for n := 0; n < net.Cfg.NumNeurons; n++ {
		net.Syn.Column(n, rf)
		sorted := append([]float64(nil), rf...)
		sort.Float64s(sorted)
		q := len(sorted) / 4
		lo, hi := 0.0, 0.0
		for i := 0; i < q; i++ {
			lo += sorted[i]
			hi += sorted[len(sorted)-1-i]
		}
		contrasts = append(contrasts, (hi+1e-9)/(lo+1e-9))
	}
	sort.Float64s(contrasts)
	fmt.Printf("RF contrast (hi/lo quartile): median %.2f max %.2f\n",
		contrasts[len(contrasts)/2], contrasts[len(contrasts)-1])
	_ = math.Sqrt
}

// rfAccuracy classifies by direct dot product of receptive fields with the
// image — an upper bound on what the spiking readout could extract.
func rfAccuracy(net *network.Network, infer *dataset.Dataset, label *dataset.Dataset) float64 {
	n := net.Cfg.NumNeurons
	rfs := make([][]float64, n)
	for i := range rfs {
		rfs[i] = make([]float64, infer.Pixels())
		net.Syn.Column(i, rfs[i])
	}
	score := func(img []uint8, rf []float64) float64 {
		var s, norm float64
		for p, v := range img {
			s += rf[p] * float64(v)
			norm += rf[p] * rf[p]
		}
		return s / (math.Sqrt(norm) + 1e-9)
	}
	// Assign each neuron the class whose labeling images it scores highest on.
	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, 10)
	}
	for i := 0; i < label.Len(); i++ {
		for j := 0; j < n; j++ {
			resp[j][label.Labels[i]] += score(label.Images[i], rfs[j])
		}
	}
	assigned := make([]int, n)
	for j := 0; j < n; j++ {
		best, bv := 0, -1.0
		for c, v := range resp[j] {
			if v > bv {
				best, bv = c, v
			}
		}
		assigned[j] = best
	}
	correct := 0
	for i := 0; i < infer.Len(); i++ {
		bestN, bv := 0, -1.0
		for j := 0; j < n; j++ {
			if s := score(infer.Images[i], rfs[j]); s > bv {
				bestN, bv = j, s
			}
		}
		if assigned[bestN] == int(infer.Labels[i]) {
			correct++
		}
	}
	return float64(correct) / float64(infer.Len())
}

// dumpRF prints a neuron's receptive field as ASCII next to a class mean.
func dumpRF(net *network.Network, train *dataset.Dataset, neuron, class int) {
	rf := make([]float64, train.Pixels())
	net.Syn.Column(neuron, rf)
	mean := make([]float64, train.Pixels())
	cnt := 0
	for i, img := range train.Images {
		if int(train.Labels[i]) != class {
			continue
		}
		cnt++
		for p, v := range img {
			mean[p] += float64(v)
		}
	}
	for p := range mean {
		mean[p] /= float64(cnt) * 255
	}
	shade := func(x float64) byte {
		ramp := " .:-=+*#%@"
		i := int(x * 10)
		if i > 9 {
			i = 9
		}
		if i < 0 {
			i = 0
		}
		return ramp[i]
	}
	maxG := 0.0
	for _, g := range rf {
		if g > maxG {
			maxG = g
		}
	}
	fmt.Printf("neuron %d RF (max g %.3f) vs class %d mean:\n", neuron, maxG, class)
	for y := 0; y < 28; y++ {
		var l, r []byte
		for x := 0; x < 28; x++ {
			l = append(l, shade(rf[y*28+x]/(maxG+1e-9)))
			r = append(r, shade(mean[y*28+x]))
		}
		fmt.Printf("%s   %s\n", l, r)
	}
}

// dumpResponses prints per-neuron labeling responses, theta and assignment.
func dumpResponses(net *network.Network, resp [][]int, assigned []int) {
	th := net.Exc.Theta()
	fmt.Println("neuron | theta | assigned | total | per-class")
	for n := range resp {
		tot := 0
		for _, c := range resp[n] {
			tot += c
		}
		if n%5 == 0 {
			fmt.Printf("n%-3d th %5.1f as %2d tot %4d %v\n", n, th[n], assigned[n], tot, resp[n])
		}
	}
}
