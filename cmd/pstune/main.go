// Command pstune is the calibration harness used to tune the network's
// electrical constants (drive amplitude, inhibition time, homeostasis,
// synaptic trace) and the learning-rule parameters against the synthetic
// digit set. It runs a full train→label→infer pipeline under the chosen
// knobs and reports accuracy, plus — with -v — winner-consistency
// diagnostics, receptive-field contrast, an RF/class-mean ASCII dump, and a
// direct RF-dot-product accuracy upper bound.
//
// Example sweeps:
//
//	pstune -amp 0.6 -tinh 30 -train 1000
//	pstune -rule det -window 50 -alphap 0.02 -alphad 0.01 -v
//	pstune -preset highfreq -hf -train 2000 -neurons 100
package main

import (
	"flag"
	"fmt"
	"time"

	"parallelspikesim/internal/dataset"
	"parallelspikesim/internal/encode"
	"parallelspikesim/internal/engine"
	"parallelspikesim/internal/fixed"
	"parallelspikesim/internal/network"
	"parallelspikesim/internal/synapse"
)

var (
	amp      = flag.Float64("amp", 0.6, "spike current amplitude")
	tinh     = flag.Float64("tinh", 30, "WTA inhibition time (ms)")
	thplus   = flag.Float64("thplus", 0.02, "homeostatic threshold increment per spike")
	thtau    = flag.Float64("thtau", 1e5, "homeostatic decay time constant (ms)")
	tausyn   = flag.Float64("tausyn", 4, "synaptic trace time constant (ms)")
	nTrain   = flag.Int("train", 300, "training images")
	nNeurons = flag.Int("neurons", 50, "first-layer neurons")
	rule     = flag.String("rule", "stochastic", "learning rule")
	preset   = flag.String("preset", "float32", "Table I preset")
	format   = flag.String("format", "", "precision override: q0.2 | q0.4 | q1.7 | q1.15 | float32 (\"\" = preset's format)")
	highfreq = flag.Bool("hf", false, "use the high-frequency control (5-78 Hz, 100 ms)")
	verbose  = flag.Bool("v", false, "verbose diagnostics (winners, contrast, RF dump)")
	alphaP   = flag.Float64("alphap", 0, "override alpha_p (0 = preset)")
	alphaD   = flag.Float64("alphad", 0, "override alpha_d (0 = preset)")
	window   = flag.Float64("window", 0, "override LTP window ms (0 = preset)")
)

// presentBoost re-presents with a boosted band until enough spikes appear.
func presentBoost(net *network.Network, img []uint8, ctl encode.Control, learn bool) network.PresentResult {
	res, err := net.Present(img, ctl, learn, nil)
	if err != nil {
		panic(err)
	}
	boosted := ctl
	for tries := 0; tries < 4 && res.TotalSpikes() < 5; tries++ {
		boosted.Band.MinHz *= 1.6
		boosted.Band.MaxHz *= 1.6
		r2, err := net.Present(img, boosted, learn, nil)
		if err != nil {
			panic(err)
		}
		res = r2
	}
	return res
}

func main() {
	flag.Parse()
	start := time.Now()
	kind, _ := synapse.ParseRule(*rule)
	train := dataset.SynthDigits(*nTrain, 1)
	test := dataset.SynthDigits(300, 2)
	syn, _, _ := synapse.PresetConfig(synapse.Preset(*preset), kind)
	syn.Seed = 6
	if *format != "" {
		f, err := fixed.ParseFormat(*format)
		if err != nil {
			panic(err)
		}
		syn.Format = f
	}
	if *alphaP > 0 {
		syn.Det.AlphaP = *alphaP
	}
	if *alphaD > 0 {
		syn.Det.AlphaD = *alphaD
	}
	if *window > 0 {
		syn.Det.WindowMS = *window
	}
	cfg := network.DefaultConfig(train.Pixels(), *nNeurons, syn)
	cfg.SpikeAmp = *amp
	cfg.TInhMS = *tinh
	cfg.LIF.ThetaPlus = *thplus
	cfg.LIF.ThetaDecayMS = *thtau
	cfg.TauSynMS = *tausyn
	net, err := network.New(cfg, network.WithExecutor(engine.New(1)))
	if err != nil {
		panic(err)
	}
	ctl := encode.BaselineControl()
	if *highfreq {
		ctl = encode.HighFrequencyControl()
	}
	distinctWinners := map[int]int{}
	winnersByClass := map[int]map[int]int{}
	for c := 0; c < 10; c++ {
		winnersByClass[c] = map[int]int{}
	}
	for i := 0; i < train.Len(); i++ {
		res := presentBoost(net, train.Images[i], ctl, true)
		w, _ := res.Winner()
		distinctWinners[w]++
		winnersByClass[int(train.Labels[i])][w]++
		if *verbose && i%50 == 0 {
			th := net.Exc.Theta()
			maxTh, meanTh := 0.0, 0.0
			for _, t := range th {
				if t > maxTh {
					maxTh = t
				}
				meanTh += t
			}
			nz := 0
			for _, c := range res.SpikeCounts {
				if c > 0 {
					nz++
				}
			}
			fmt.Printf("  img %3d: spikes %3d activeNeurons %2d theta mean %.1f max %.1f\n",
				i, res.TotalSpikes(), nz, meanTh/float64(len(th)), maxTh)
		}
	}
	if *verbose {
		diagnose(net, train, winnersByClass)
	}
	if *verbose {
		bestN, bestC, bestW := 0, 0, 0
		for c := 0; c < 10; c++ {
			for n, w := range winnersByClass[c] {
				if n >= 0 && w > bestW {
					bestN, bestC, bestW = n, c, w
				}
			}
		}
		dumpRF(net, train, bestN, bestC)
	}
	for i, th := 0, net.Exc.Theta(); i < len(th); i++ {
		th[i] = 0
	} // evaluation: drop training homeostasis
	labelSet, inferSet := test.LabelInferSplit(150)
	resp := make([][]int, *nNeurons)
	for i := range resp {
		resp[i] = make([]int, 10)
	}
	for i := 0; i < labelSet.Len(); i++ {
		res := presentBoost(net, labelSet.Images[i], ctl, false)
		for n, c := range res.SpikeCounts {
			resp[n][labelSet.Labels[i]] += c
		}
	}
	assigned := make([]int, *nNeurons)
	for n := range assigned {
		best, bc := -1, 0
		for cl, c := range resp[n] {
			if c > bc {
				best, bc = cl, c
			}
		}
		assigned[n] = best
	}
	if *verbose {
		dumpResponses(net, resp, assigned)
	}
	correct, total := 0, 0
	for i := 0; i < inferSet.Len(); i++ {
		res := presentBoost(net, inferSet.Images[i], ctl, false)
		votes := make([]int, 10)
		for n, c := range res.SpikeCounts {
			if assigned[n] >= 0 {
				votes[assigned[n]] += c
			}
		}
		best, bc := -1, 0
		for cl, v := range votes {
			if v > bc {
				best, bc = cl, v
			}
		}
		total++
		if best == int(inferSet.Labels[i]) {
			correct++
		}
	}
	fmt.Printf("rfAcc %.1f%% ", 100*rfAccuracy(net, inferSet, labelSet))
	fmt.Printf("%s/%s amp=%.2f tinh=%.0f thp=%.2f thtau=%.0g: acc %.1f%% winners %d/%d  %v\n",
		*rule, syn.Format, *amp, *tinh, *thplus, *thtau, 100*float64(correct)/float64(total),
		len(distinctWinners), *nNeurons, time.Since(start).Round(time.Millisecond))
}
