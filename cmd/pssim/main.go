// Command pssim trains and evaluates one ParallelSpikeSim configuration:
// the paper's pipeline (train → label → infer) over a chosen data set,
// learning rule, precision preset, rounding option and frequency control.
//
// Examples:
//
//	pssim -data digits -rule stochastic -train 2000 -neurons 100
//	pssim -data fashion -rule deterministic -train 2000
//	pssim -preset 8bit -rounding truncation -rule stochastic
//	pssim -preset highfreq -rule stochastic            # fast learning mode
//	pssim -mnist /data/mnist -rule stochastic           # real IDX files
//	pssim -config run.json                              # environment file
//	pssim -save model.pss … ; pssim -load model.pss …   # persist/reuse
//
// Long runs can be made crash-safe with periodic checkpoints. A run
// interrupted by Ctrl-C (or SIGTERM, or a crash) resumes bit-identically
// from its last checkpoint:
//
//	pssim -train 60000 -checkpoint run.ckpt -checkpoint-every 500
//	pssim -train 60000 -checkpoint run.ckpt -resume   # after interruption
//
// Observability: -metrics dumps per-phase timing histograms and cumulative
// spike/update counters (Prometheus text, or JSON for *.json paths);
// -metrics-every refreshes the dump during training; -pprof serves
// net/http/pprof on the given address. Cumulative counters survive
// -checkpoint / -resume cycles.
//
//	pssim -train 2000 -metrics -                       # dump to stdout at exit
//	pssim -train 60000 -metrics run.prom -metrics-every 1000 -pprof :6060
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"parallelspikesim/internal/config"
	"parallelspikesim/internal/dataset"
	"parallelspikesim/internal/encode"
	"parallelspikesim/internal/engine"
	"parallelspikesim/internal/fixed"
	"parallelspikesim/internal/infer"
	"parallelspikesim/internal/learn"
	"parallelspikesim/internal/netio"
	"parallelspikesim/internal/network"
	"parallelspikesim/internal/obs"
	"parallelspikesim/internal/synapse"
	"parallelspikesim/internal/viz"
)

func main() {
	var (
		data     = flag.String("data", "digits", "data set: digits | fashion")
		mnistDir = flag.String("mnist", "", "directory with real MNIST IDX files (overrides -data)")
		rule     = flag.String("rule", "stochastic", "learning rule: deterministic | stochastic")
		preset   = flag.String("preset", "float32", "Table I preset: 2bit|4bit|8bit|16bit|float32|highfreq")
		format   = flag.String("format", "", "precision override: q0.2 | q0.4 | q1.7 | q1.15 | float32 (\"\" = preset's format)")
		rounding = flag.String("rounding", "", "rounding override: truncation | nearest | stochastic")
		neurons  = flag.Int("neurons", 100, "first-layer neurons")
		nTrain   = flag.Int("train", 2000, "training images")
		nLabel   = flag.Int("label", 300, "labeling images (paper: 1000)")
		nInfer   = flag.Int("infer", 500, "inference images (paper: 9000)")
		tlearn   = flag.Float64("tlearn", 0, "presentation time ms (0 = preset)")
		workers  = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS, 1 = sequential)")
		seed     = flag.Uint64("seed", 7, "master seed")
		showMaps = flag.Int("maps", 0, "print N conductance maps after training")
		progress = flag.Bool("progress", true, "print moving error during training")
		cfgPath  = flag.String("config", "", "JSON simulation-environment file (overrides most flags)")
		savePath = flag.String("save", "", "save the trained network snapshot to this file")
		loadPath = flag.String("load", "", "load a trained snapshot instead of training")
		ckptPath = flag.String("checkpoint", "", "write training checkpoints to this file (enables Ctrl-C safe interruption)")
		ckptEach = flag.Int("checkpoint-every", 500, "checkpoint every N training images")
		resume   = flag.Bool("resume", false, "resume training from the -checkpoint file if it exists")
		metrics  = flag.String("metrics", "", "dump metrics to this file, or - for stdout (Prometheus text; *.json for JSON)")
		metEvery = flag.Int("metrics-every", 0, "also refresh the -metrics dump every N training images (0 = only at exit)")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	)
	flag.Parse()

	if *cfgPath != "" {
		f, err := config.Load(*cfgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pssim:", err)
			os.Exit(1)
		}
		*data, *mnistDir, *rule, *preset, *rounding = f.Data, f.MNISTDir, f.Rule, f.Preset, f.Rounding
		*neurons, *nTrain, *nLabel, *nInfer = f.Neurons, f.TrainImages, f.LabelImages, f.InferImages
		*tlearn, *workers, *seed = f.TLearnMS, f.Workers, f.Seed
	}

	if err := run(*data, *mnistDir, *rule, *preset, *format, *rounding, *neurons,
		*nTrain, *nLabel, *nInfer, *tlearn, *workers, *seed, *showMaps, *progress,
		*savePath, *loadPath, checkpointOpts{Path: *ckptPath, Every: *ckptEach, Resume: *resume},
		obsOpts{Metrics: *metrics, Every: *metEvery, Pprof: *pprof}); err != nil {
		fmt.Fprintln(os.Stderr, "pssim:", err)
		os.Exit(1)
	}
}

// checkpointOpts configures crash-safe training: periodic snapshots of the
// full trainer state, interruption on SIGINT/SIGTERM, and resumption.
type checkpointOpts struct {
	Path   string
	Every  int
	Resume bool
}

// obsOpts configures the observability surface: metric dumps and pprof.
type obsOpts struct {
	Metrics string // dump target: "" = off, "-" = stdout, else a file path
	Every   int    // refresh the dump every N training images (0 = exit only)
	Pprof   string // pprof listen address ("" = off)
}

// registry builds the obs registry the run needs, or nil when observability
// is off so instrumentation stays free.
func (o obsOpts) registry() *obs.Registry {
	if o.Metrics == "" && o.Pprof == "" {
		return nil
	}
	return obs.NewRegistry()
}

// dump writes the current snapshot to the -metrics target. Prometheus text
// by default; JSON when the path ends in .json.
func (o obsOpts) dump(reg *obs.Registry) error {
	if o.Metrics == "" || reg == nil {
		return nil
	}
	snap := reg.Snapshot()
	if o.Metrics == "-" {
		return snap.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(o.Metrics)
	if err != nil {
		return err
	}
	if strings.HasSuffix(o.Metrics, ".json") {
		err = snap.WriteJSON(f)
	} else {
		err = snap.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func run(data, mnistDir, rule, preset, format, rounding string, neurons, nTrain, nLabel, nInfer int,
	tlearn float64, workers int, seed uint64, showMaps int, progress bool,
	savePath, loadPath string, ckpt checkpointOpts, ob obsOpts) error {

	if ckpt.Resume && ckpt.Path == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if ckpt.Path != "" && ckpt.Every <= 0 {
		return fmt.Errorf("-checkpoint-every must be positive, got %d", ckpt.Every)
	}
	if ob.Every < 0 {
		return fmt.Errorf("-metrics-every must be non-negative, got %d", ob.Every)
	}
	if ob.Every > 0 && ob.Metrics == "" {
		return fmt.Errorf("-metrics-every requires -metrics")
	}

	reg := ob.registry()
	if ob.Pprof != "" {
		ln := ob.Pprof
		//psslint:detached opt-in pprof debug listener; serves until the process exits
		go func() {
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pssim: pprof server:", err)
			}
		}()
		fmt.Printf("pprof listening on %s\n", ln)
	}

	kind, err := synapse.ParseRule(rule)
	if err != nil {
		return err
	}
	syn, band, err := synapse.PresetConfig(synapse.Preset(preset), kind)
	if err != nil {
		return err
	}
	if format != "" {
		f, err := fixed.ParseFormat(format)
		if err != nil {
			return err
		}
		syn.Format = f
	}
	if rounding != "" {
		r, err := fixed.ParseRounding(rounding)
		if err != nil {
			return err
		}
		syn.Rounding = r
	}
	syn.Seed = seed

	var train, test *dataset.Dataset
	switch {
	case mnistDir != "":
		if train, test, err = dataset.LoadMNISTDir(mnistDir); err != nil {
			return err
		}
		if nTrain < train.Len() {
			train = train.Subset(0, nTrain)
		}
	case data == "digits":
		train = dataset.SynthDigits(nTrain, seed)
		test = dataset.SynthDigits(nLabel+nInfer, seed+1000)
	case data == "fashion":
		train = dataset.SynthFashion(nTrain, seed)
		test = dataset.SynthFashion(nLabel+nInfer, seed+1000)
	default:
		return fmt.Errorf("unknown data set %q", data)
	}
	if test.Len() > nLabel+nInfer {
		test = test.Subset(0, nLabel+nInfer)
	}

	cfg := network.DefaultConfig(train.Pixels(), neurons, syn)
	w := workers
	if w == 0 {
		w = engine.Auto // CLI convention: 0 means all cores
	}
	exec := engine.New(w)
	defer exec.Close()
	engine.Instrument(exec, reg)
	net, err := network.New(cfg, network.WithExecutor(exec), network.WithObserver(reg))
	if err != nil {
		return err
	}

	opts := learn.DefaultOptions()
	opts.Control.Band = encode.Band{MinHz: band.MinHz, MaxHz: band.MaxHz}
	if preset == string(synapse.PresetHighFreq) {
		opts.Control = encode.HighFrequencyControl()
	}
	if tlearn > 0 {
		opts.Control.TLearnMS = tlearn
	}

	fmt.Printf("pssim: %s / %s / %s rounding=%s | %d inputs × %d neurons | band %.0f-%.0f Hz, %.0f ms/image\n",
		train.Name, kind, syn.Format, syn.Rounding,
		train.Pixels(), neurons, opts.Control.Band.MinHz, opts.Control.Band.MaxHz, opts.Control.TLearnMS)

	opts.NumClasses = train.NumClasses
	tr, err := learn.New(net, opts)
	if err != nil {
		return err
	}
	start := time.Now()
	if loadPath != "" {
		snap, err := netio.LoadFile(loadPath)
		if err != nil {
			return err
		}
		if err := snap.Restore(net); err != nil {
			return err
		}
		fmt.Printf("loaded trained snapshot from %s (training skipped)\n", loadPath)
	} else {
		if ckpt.Resume {
			switch snap, err := netio.LoadFile(ckpt.Path); {
			case os.IsNotExist(err):
				fmt.Printf("no checkpoint at %s yet, starting fresh\n", ckpt.Path)
			case err != nil:
				return fmt.Errorf("resume: %w", err)
			case snap.Trainer == nil:
				return fmt.Errorf("resume: %s is a plain model snapshot without training progress", ckpt.Path)
			default:
				if err := snap.Restore(net); err != nil {
					return fmt.Errorf("resume: %w", err)
				}
				if err := tr.RestoreState(snap.Trainer); err != nil {
					return fmt.Errorf("resume: %w", err)
				}
				fmt.Printf("resumed from %s at image %d/%d\n", ckpt.Path, tr.ImagesSeen, train.Len())
			}
		}
		if ckpt.Path != "" {
			tr.CheckpointEvery = ckpt.Every
			tr.Checkpoint = func() error {
				return netio.SaveFile(ckpt.Path, netio.CaptureCheckpoint(net, tr))
			}
			var interrupted atomic.Bool
			tr.Interrupted = interrupted.Load
			sigc := make(chan os.Signal, 1)
			signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
			defer signal.Stop(sigc)
			go func() {
				s := <-sigc
				interrupted.Store(true)
				// A second signal kills the process the default way.
				signal.Stop(sigc)
				fmt.Fprintf(os.Stderr, "\npssim: %v — finishing current image and checkpointing (signal again to force quit)\n", s)
			}()
		}
		err = tr.Train(train, func(i int, movingErr float64) {
			if progress && (i+1)%500 == 0 {
				fmt.Printf("  trained %5d/%d images, moving error %.1f%%, elapsed %v\n",
					i+1, train.Len(), 100*movingErr, time.Since(start).Round(time.Second))
			}
			if ob.Every > 0 && ob.Metrics != "-" && (i+1)%ob.Every == 0 {
				if derr := ob.dump(reg); derr != nil {
					fmt.Fprintln(os.Stderr, "pssim: metrics dump:", derr)
				}
			}
		})
		if errors.Is(err, learn.ErrInterrupted) {
			fmt.Printf("interrupted at image %d/%d; progress saved to %s — rerun with -resume to continue\n",
				tr.ImagesSeen, train.Len(), ckpt.Path)
			return ob.dump(reg)
		}
		if err != nil {
			return err
		}
	}
	trainWall := time.Since(start)

	labelSet, inferSet := test.LabelInferSplit(nLabel)
	model, err := tr.Label(labelSet)
	if err != nil {
		return err
	}
	// Held-out accuracy runs through the serving path: the trained state is
	// snapshotted exactly as -save writes it, loaded into the frozen-weight
	// inference engine, and evaluated with the same batched classifier
	// psserve exposes — so the accuracy printed here is the accuracy a
	// served copy of this model delivers.
	eng, err := infer.FromSnapshot(netio.Capture(net, model), cfg, opts.Control, train.NumClasses,
		infer.WithExecutor(exec), infer.WithObserver(reg))
	if err != nil {
		return err
	}
	conf, err := learn.EvaluateClassifier(eng, inferSet, train.NumClasses)
	if err != nil {
		return err
	}
	if savePath != "" {
		if err := netio.SaveFile(savePath, netio.Capture(net, model)); err != nil {
			return err
		}
		fmt.Printf("saved trained snapshot to %s\n", savePath)
	}

	fmt.Printf("\naccuracy: %.2f%% (%d/%d, %d unclassified)\n",
		100*conf.Accuracy(), conf.Correct(), conf.Total(), conf.Misses())
	fmt.Printf("training wall clock: %v (%d boost re-presentations)\n", trainWall.Round(time.Millisecond), tr.BoostCount)
	fmt.Printf("confusion matrix:\n%s", conf.String())

	if showMaps > 0 {
		fmt.Println("\nconductance maps (strongest receptive fields):")
		rf := make([]float64, train.Pixels())
		var tiles []string
		for n := 0; n < showMaps && n < neurons; n++ {
			net.Syn.Column(n, rf)
			tile, err := viz.ConductanceASCII(rf, train.Width, train.Height)
			if err != nil {
				return err
			}
			tiles = append(tiles, tile)
		}
		fmt.Println(viz.TileGrid(tiles, 4))
	}
	return ob.dump(reg)
}
