package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parallelspikesim/internal/check"
	"parallelspikesim/internal/dataset"
	"parallelspikesim/internal/encode"
	"parallelspikesim/internal/engine"
	"parallelspikesim/internal/fault"
	"parallelspikesim/internal/fixed"
	"parallelspikesim/internal/infer"
	"parallelspikesim/internal/learn"
	"parallelspikesim/internal/netio"
	"parallelspikesim/internal/network"
	"parallelspikesim/internal/obs"
	"parallelspikesim/internal/registry"
	"parallelspikesim/internal/synapse"
)

// stubModel is a deterministic fake: class = first pixel mod classes, and
// Winner echoes the model version so generation tags can be audited.
type stubModel struct {
	inputs, classes int
	version         int
	delay           time.Duration
	err             error
}

func (m *stubModel) NumInputs() int  { return m.inputs }
func (m *stubModel) NumClasses() int { return m.classes }

func (m *stubModel) PredictBatch(imgs [][]uint8) ([]infer.Prediction, error) {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	if m.err != nil {
		return nil, m.err
	}
	out := make([]infer.Prediction, len(imgs))
	for i, img := range imgs {
		out[i] = infer.Prediction{Class: int(img[0]) % m.classes, Winner: m.version, Spikes: 1, Votes: make([]int, m.classes)}
	}
	return out, nil
}

// noBuilder backs registries whose tests publish prebuilt engines.
func noBuilder(*netio.Snapshot) (registry.Engine, error) {
	return nil, errors.New("test registry has no builder")
}

// versionBuilder reads a version out of Theta[0], pairing with
// testSnapshot for reload tests.
func versionBuilder(s *netio.Snapshot) (registry.Engine, error) {
	return &stubModel{inputs: s.NumInputs, classes: 4, version: int(s.Theta[0])}, nil
}

// testSnapshot is a minimal servable 3×3 snapshot carrying a version in
// Theta[0].
func testSnapshot(version int) *netio.Snapshot {
	return &netio.Snapshot{
		NumInputs:   3,
		NumNeurons:  3,
		Format:      fixed.Float32,
		G:           []float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1},
		Theta:       []float64{float64(version), 0, 0},
		Assignments: []int{0, 1, 2},
	}
}

// stubRegistry wraps prebuilt engines in a registry, each at generation 1.
func stubRegistry(t *testing.T, engines map[string]registry.Engine) *registry.Registry {
	t.Helper()
	classes := 4
	for _, e := range engines {
		classes = e.NumClasses()
	}
	r, err := registry.New(noBuilder, classes)
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range engines {
		if _, err := r.Publish(name, "", e); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func defaultRegistry(t *testing.T, model registry.Engine) *registry.Registry {
	return stubRegistry(t, map[string]registry.Engine{"default": model})
}

func defaultConfig() serverConfig {
	return serverConfig{maxBatch: 4, maxInflight: 2, timeout: 2 * time.Second, defaultModel: "default"}
}

func newTestServer(t *testing.T, models *registry.Registry, reg *obs.Registry, sc serverConfig) *httptest.Server {
	t.Helper()
	h, err := newHandler(models, nil, reg, sc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func postClassify(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestClassifyEndpoint(t *testing.T) {
	check.NoLeaks(t)
	models := defaultRegistry(t, &stubModel{inputs: 3, classes: 4, version: 7})
	srv := newTestServer(t, models, nil, defaultConfig())
	resp, body := postClassify(t, srv.URL, `{"images": [[2,0,0], [7,0,0]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out classifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if len(out.Predictions) != 2 || out.Predictions[0].Class != 2 || out.Predictions[1].Class != 3 {
		t.Fatalf("predictions %+v, want classes [2 3]", out.Predictions)
	}
	if out.Model != "default" || out.Generation != 1 {
		t.Fatalf("response tagged %q gen %d, want default gen 1", out.Model, out.Generation)
	}
}

func TestNamedModelEndpoint(t *testing.T) {
	check.NoLeaks(t)
	models := stubRegistry(t, map[string]registry.Engine{
		"default": &stubModel{inputs: 3, classes: 4, version: 1},
		"edge":    &stubModel{inputs: 3, classes: 4, version: 2},
	})
	srv := newTestServer(t, models, nil, defaultConfig())

	resp, err := http.Post(srv.URL+"/models/edge/classify", "application/json", strings.NewReader(`{"images": [[1,0,0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out classifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Model != "edge" || out.Predictions[0].Winner != 2 {
		t.Fatalf("response %+v, want model edge version 2", out)
	}

	// Unknown model is a counted rejection, not a panic.
	reg := obs.NewRegistry()
	srv2 := newTestServer(t, models, reg, defaultConfig())
	resp, err = http.Post(srv2.URL+"/models/ghost/classify", "application/json", strings.NewReader(`{"images": [[1,0,0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status %d, want 404", resp.StatusCode)
	}
	if v := reg.Counter("psserve_http_rejected_total").Value(); v != 1 {
		t.Fatalf("rejected counter %d, want 1", v)
	}
}

func TestClassifyRejectsBadPayloads(t *testing.T) {
	check.NoLeaks(t)
	reg := obs.NewRegistry()
	models := defaultRegistry(t, &stubModel{inputs: 3, classes: 4})
	srv := newTestServer(t, models, reg, defaultConfig())
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"not json", `pixels please`, http.StatusBadRequest},
		{"empty batch", `{"images": []}`, http.StatusBadRequest},
		{"no images key", `{}`, http.StatusBadRequest},
		{"oversized batch", `{"images": [[0,0,0],[0,0,0],[0,0,0],[0,0,0],[0,0,0]]}`, http.StatusRequestEntityTooLarge},
		{"wrong pixel count", `{"images": [[1,2]]}`, http.StatusBadRequest},
		{"pixel out of uint8 range", `{"images": [[300,0,0]]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postClassify(t, srv.URL, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, body, tc.status)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q not a JSON error", body)
			}
		})
	}
	if v := reg.Counter("psserve_http_rejected_total").Value(); v != uint64(len(cases)) {
		t.Fatalf("rejected counter %d, want %d", v, len(cases))
	}
}

func TestClassifyRejectsBadPriority(t *testing.T) {
	check.NoLeaks(t)
	reg := obs.NewRegistry()
	models := defaultRegistry(t, &stubModel{inputs: 3, classes: 4})
	srv := newTestServer(t, models, reg, defaultConfig())
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/classify", strings.NewReader(`{"images": [[1,0,0]]}`))
	req.Header.Set("X-Priority", "urgent")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if v := reg.Counter("psserve_http_rejected_total").Value(); v != 1 {
		t.Fatalf("rejected counter %d, want 1", v)
	}
}

func TestClassifyRejectsOversizedBody(t *testing.T) {
	check.NoLeaks(t)
	models := defaultRegistry(t, &stubModel{inputs: 3, classes: 4})
	srv := newTestServer(t, models, nil, defaultConfig())
	huge := fmt.Sprintf(`{"images": [[0,0,0]], "padding": %q}`, bytes.Repeat([]byte{'x'}, 1<<17))
	resp, _ := postClassify(t, srv.URL, huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestClassifyMethodAndHealthz(t *testing.T) {
	check.NoLeaks(t)
	models := defaultRegistry(t, &stubModel{inputs: 3, classes: 4})
	srv := newTestServer(t, models, nil, defaultConfig())
	resp, err := http.Get(srv.URL + "/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /classify status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status     string        `json:"status"`
		Model      string        `json:"model"`
		Generation uint64        `json:"generation"`
		Inputs     int           `json:"inputs"`
		Classes    int           `json:"classes"`
		Models     []healthModel `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Inputs != 3 || health.Classes != 4 {
		t.Fatalf("healthz %+v", health)
	}
	if health.Model != "default" || health.Generation != 1 {
		t.Fatalf("healthz default model %q gen %d", health.Model, health.Generation)
	}
	if len(health.Models) != 1 || health.Models[0].Name != "default" || health.Models[0].Generation != 1 {
		t.Fatalf("healthz models %+v", health.Models)
	}
}

// TestTimeoutAndRejectedCountersDisjoint pins the counter split: a
// deadline 503 increments only the timeout counter, a bad payload only the
// rejection counter, and a degradation shed only its rung counter — no
// request is double-counted.
func TestTimeoutAndRejectedCountersDisjoint(t *testing.T) {
	check.NoLeaks(t)
	reg := obs.NewRegistry()
	sc := serverConfig{maxBatch: 4, maxInflight: 2, timeout: 30 * time.Millisecond, defaultModel: "default"}
	models := defaultRegistry(t, &stubModel{inputs: 3, classes: 4, delay: 500 * time.Millisecond})
	srv := newTestServer(t, models, reg, sc)

	resp, body := postClassify(t, srv.URL, `{"images": [[1,0,0]]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	if v := reg.Counter("psserve_http_timeouts_total").Value(); v != 1 {
		t.Fatalf("timeout counter %d, want 1", v)
	}
	if v := reg.Counter("psserve_http_rejected_total").Value(); v != 0 {
		t.Fatalf("rejected counter %d after a deadline 503, want 0 — deadline timeouts must not count as rejections", v)
	}

	resp, _ = postClassify(t, srv.URL, `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad payload status %d", resp.StatusCode)
	}
	if v := reg.Counter("psserve_http_rejected_total").Value(); v != 1 {
		t.Fatalf("rejected counter %d, want 1", v)
	}
	if v := reg.Counter("psserve_http_timeouts_total").Value(); v != 1 {
		t.Fatalf("timeout counter moved to %d on a rejection", v)
	}
	for _, rung := range []string{"psserve_degrade_shrunk_total", "psserve_degrade_shed_total", "psserve_degrade_saturated_total"} {
		if v := reg.Counter(rung).Value(); v != 0 {
			t.Fatalf("%s = %d, want 0", rung, v)
		}
	}
}

// TestDegradationLadder drives the rungs one by one against a saturated
// server: shrink, shed, saturation 503 — each counted exactly once in its
// own metric.
func TestDegradationLadder(t *testing.T) {
	check.NoLeaks(t)
	reg := obs.NewRegistry()
	sc := serverConfig{maxBatch: 4, maxInflight: 1, timeout: 200 * time.Millisecond, defaultModel: "default"}
	models := defaultRegistry(t, &stubModel{inputs: 3, classes: 4, delay: 2 * time.Second})
	srv := newTestServer(t, models, reg, sc)

	// Occupy the only slot.
	hold := make(chan struct{})
	go func() {
		defer close(hold)
		resp, err := http.Post(srv.URL+"/classify", "application/json", strings.NewReader(`{"images": [[1,0,0]]}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitForBusySlot(t, reg)

	// Rung 2: a low-priority request is shed immediately, well before any
	// deadline could expire.
	start := time.Now()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/classify", strings.NewReader(`{"images": [[1,0,0]]}`))
	req.Header.Set("X-Priority", "low")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("low-priority status %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > sc.timeout {
		t.Fatalf("low-priority shed took %v — it queued instead of shedding", elapsed)
	}
	if v := reg.Counter("psserve_degrade_shed_total").Value(); v != 1 {
		t.Fatalf("shed counter %d, want 1", v)
	}

	// Rungs 1+3: a normal request gets a shrunk deadline (pressure) and
	// then 503s when no slot frees within it.
	resp2, body := postClassify(t, srv.URL, `{"images": [[1,0,0]]}`)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status %d (%s), want 503", resp2.StatusCode, body)
	}
	if v := reg.Counter("psserve_degrade_shrunk_total").Value(); v == 0 {
		t.Fatal("shrunk counter still 0 — rung 1 never engaged under pressure")
	}
	if v := reg.Counter("psserve_degrade_saturated_total").Value(); v != 1 {
		t.Fatalf("saturated counter %d, want 1", v)
	}
	// The rejection and timeout counters stayed out of it.
	if v := reg.Counter("psserve_http_rejected_total").Value(); v != 0 {
		t.Fatalf("rejected counter %d, want 0", v)
	}
	<-hold
}

// waitForBusySlot polls until the held classification slot is visible.
func waitForBusySlot(t *testing.T, reg *obs.Registry) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter("psserve_http_requests_total").Value() >= 1 {
			// The request entered the handler; give it a beat to take the
			// slot (it has a 2 s model, so it will hold it).
			time.Sleep(50 * time.Millisecond)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("held request never arrived")
}

// TestLadderBudget exercises rung 1 decisions directly.
func TestLadderBudget(t *testing.T) {
	check.NoLeaks(t)
	reg := obs.NewRegistry()
	l := newLadder(serverConfig{maxBatch: 1, maxInflight: 4, timeout: 8 * time.Second, defaultModel: "d"}, reg)
	if l.shrinkAt != 2 {
		t.Fatalf("auto shrinkAt %d, want 2", l.shrinkAt)
	}
	if d, shrunk := l.budget(prioNormal); d != 8*time.Second || shrunk {
		t.Fatalf("healthy budget %v shrunk=%v", d, shrunk)
	}
	// Fill to the threshold: budgets shrink for normal, not for high.
	l.sem <- struct{}{}
	l.sem <- struct{}{}
	if d, shrunk := l.budget(prioNormal); d != 4*time.Second || !shrunk {
		t.Fatalf("pressured budget %v shrunk=%v", d, shrunk)
	}
	if d, shrunk := l.budget(prioHigh); d != 8*time.Second || shrunk {
		t.Fatalf("high-priority budget %v shrunk=%v", d, shrunk)
	}
	if v := reg.Counter("psserve_degrade_shrunk_total").Value(); v != 1 {
		t.Fatalf("shrunk counter %d", v)
	}

	// Explicit threshold override.
	l2 := newLadder(serverConfig{maxBatch: 1, maxInflight: 4, timeout: time.Second, shrinkAt: 4, defaultModel: "d"}, nil)
	l2.sem <- struct{}{}
	l2.sem <- struct{}{}
	l2.sem <- struct{}{}
	if d, shrunk := l2.budget(prioNormal); d != time.Second || shrunk {
		t.Fatalf("below-threshold budget %v shrunk=%v", d, shrunk)
	}

	if _, err := parsePriority("urgent"); err == nil {
		t.Error("unknown priority accepted")
	}
	for h, want := range map[string]priority{"": prioNormal, "normal": prioNormal, "low": prioLow, "high": prioHigh} {
		if p, err := parsePriority(h); err != nil || p != want {
			t.Errorf("parsePriority(%q) = %v, %v", h, p, err)
		}
	}
}

func TestClassifyModelError(t *testing.T) {
	check.NoLeaks(t)
	models := defaultRegistry(t, &stubModel{inputs: 3, classes: 4, err: errors.New("boom")})
	srv := newTestServer(t, models, nil, defaultConfig())
	resp, _ := postClassify(t, srv.URL, `{"images": [[1,0,0]]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
}

func TestHandlerRejectsBadConfig(t *testing.T) {
	check.NoLeaks(t)
	models := defaultRegistry(t, &stubModel{inputs: 3, classes: 4})
	for _, sc := range []serverConfig{
		{maxBatch: 0, maxInflight: 1, timeout: time.Second, defaultModel: "default"},
		{maxBatch: 1, maxInflight: 0, timeout: time.Second, defaultModel: "default"},
		{maxBatch: 1, maxInflight: 1, timeout: 0, defaultModel: "default"},
		{maxBatch: 1, maxInflight: 1, timeout: time.Second},
		{maxBatch: 1, maxInflight: 1, timeout: time.Second, defaultModel: "default", shrinkAt: 2},
	} {
		if _, err := newHandler(models, nil, nil, sc); err == nil {
			t.Fatalf("config %+v accepted", sc)
		}
	}
	if _, err := newHandler(nil, nil, nil, defaultConfig()); err == nil {
		t.Fatal("nil registry accepted")
	}
}

// TestReloadEndpoint drives the admin hot-reload path: a retrained
// snapshot becomes the next generation, a corrupt one is rejected with the
// old generation still serving, and the report says which is which.
func TestReloadEndpoint(t *testing.T) {
	check.NoLeaks(t)
	mem := fault.NewMemFS()
	if err := netio.SaveFileFS(mem, "models/m.pss", testSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	models, err := registry.New(versionBuilder, 4, registry.WithFS(mem))
	if err != nil {
		t.Fatal(err)
	}
	if rep := models.Rescan("models"); rep.Failed() != 0 {
		t.Fatalf("seed scan %+v", rep)
	}
	reg := obs.NewRegistry()
	sc := serverConfig{maxBatch: 4, maxInflight: 2, timeout: 2 * time.Second, defaultModel: "m", modelsDir: "models"}
	srv := newTestServer(t, models, reg, sc)

	post := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	// Retrain and reload: generation 2.
	if err := netio.SaveFileFS(mem, "models/m.pss", testSnapshot(2)); err != nil {
		t.Fatal(err)
	}
	resp, body := post("/reload")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Report []reloadResult `json:"report"`
		Failed int            `json:"failed"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || len(rep.Report) != 1 || rep.Report[0].Generation != 2 {
		t.Fatalf("report %+v", rep)
	}
	cresp, cbody := postClassify(t, srv.URL, `{"images": [[1,0,0]]}`)
	var out classifyResponse
	if err := json.Unmarshal(cbody, &out); err != nil || cresp.StatusCode != http.StatusOK {
		t.Fatalf("classify after reload: %d %s", cresp.StatusCode, cbody)
	}
	if out.Generation != 2 || out.Predictions[0].Winner != 2 {
		t.Fatalf("serving %+v after reload, want generation 2 version 2", out)
	}

	// Corrupt publish: reload reports the failure, old generation serves.
	if err := netio.SaveFileFS(mem, "models/m.pss", testSnapshot(3)); err != nil {
		t.Fatal(err)
	}
	mem.Corrupt("models/m.pss", 25)
	resp, body = post("/reload")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt reload status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Report[0].Error == "" || rep.Report[0].Generation != 2 {
		t.Fatalf("corrupt report %+v", rep)
	}
	_, cbody = postClassify(t, srv.URL, `{"images": [[1,0,0]]}`)
	if err := json.Unmarshal(cbody, &out); err != nil {
		t.Fatal(err)
	}
	if out.Generation != 2 || out.Predictions[0].Winner != 2 {
		t.Fatalf("serving %+v after corrupt reload, want old generation 2", out)
	}

	// GET /reload is a rejected method.
	getResp, err := http.Get(srv.URL + "/reload")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload status %d", getResp.StatusCode)
	}
	if v := reg.Counter("psserve_http_reloads_total").Value(); v != 2 {
		t.Fatalf("reload counter %d, want 2", v)
	}
}

// TestGracefulDrainCompletesInflight is the SIGTERM-equivalent shutdown
// contract: canceling the serve context lets inflight classifications
// finish while new connections are refused.
func TestGracefulDrainCompletesInflight(t *testing.T) {
	check.NoLeaks(t)
	models := defaultRegistry(t, &stubModel{inputs: 3, classes: 4, delay: 400 * time.Millisecond})
	h, err := newHandler(models, nil, nil, serverConfig{maxBatch: 4, maxInflight: 2, timeout: 5 * time.Second, defaultModel: "default"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	o := options{sc: serverConfig{timeout: 5 * time.Second}}
	srv := newHTTPServer(ln.Addr().String(), h, o)
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serve(ctx, srv, ln, 5*time.Second) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		status int
		body   []byte
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/classify", "application/json", strings.NewReader(`{"images": [[2,0,0]]}`))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- result{status: resp.StatusCode, body: b}
	}()

	// Let the request reach the (slow) model, then pull the plug.
	time.Sleep(100 * time.Millisecond)
	cancel()

	// New connections must be refused once the listener closes. The drain
	// window is still open, so poll briefly.
	refused := false
	client := &http.Client{Timeout: time.Second}
	for i := 0; i < 40 && !refused; i++ {
		resp, err := client.Post(base+"/classify", "application/json", strings.NewReader(`{"images": [[2,0,0]]}`))
		if err != nil {
			refused = true
			break
		}
		resp.Body.Close()
		time.Sleep(50 * time.Millisecond)
	}
	if !refused {
		t.Error("new requests were still accepted after shutdown began")
	}

	// The inflight classification finished with a real answer.
	res := <-inflight
	if res.err != nil {
		t.Fatalf("inflight request failed during drain: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("inflight request status %d (%s), want 200", res.status, res.body)
	}
	var out classifyResponse
	if err := json.Unmarshal(res.body, &out); err != nil || len(out.Predictions) != 1 || out.Predictions[0].Class != 2 {
		t.Fatalf("inflight response %s", res.body)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}

// TestNewHTTPServerSlowlorisHardening pins the listener timeouts: header,
// read and idle windows are all bounded so a trickling client cannot hold
// a connection forever, and run refuses configs that disable them.
func TestNewHTTPServerSlowlorisHardening(t *testing.T) {
	check.NoLeaks(t)
	o := options{
		readHeaderTimeout: 3 * time.Second,
		readTimeout:       7 * time.Second,
		idleTimeout:       11 * time.Second,
		sc:                serverConfig{timeout: 2 * time.Second},
	}
	srv := newHTTPServer(":0", nil, o)
	if srv.ReadHeaderTimeout != 3*time.Second {
		t.Errorf("ReadHeaderTimeout %v", srv.ReadHeaderTimeout)
	}
	if srv.ReadTimeout != 7*time.Second {
		t.Errorf("ReadTimeout %v", srv.ReadTimeout)
	}
	if srv.IdleTimeout != 11*time.Second {
		t.Errorf("IdleTimeout %v", srv.IdleTimeout)
	}
	if srv.WriteTimeout != 7*time.Second {
		t.Errorf("WriteTimeout %v, want request deadline + 5s", srv.WriteTimeout)
	}

	for _, bad := range []options{
		{readTimeout: time.Second, idleTimeout: time.Second},
		{readHeaderTimeout: time.Second, idleTimeout: time.Second},
		{readHeaderTimeout: time.Second, readTimeout: time.Second},
	} {
		if err := run(bad); err == nil {
			t.Errorf("options %+v accepted", bad)
		}
	}
}

// TestHTTPChaosReloadStorm floods /models/m/classify from several clients
// while an admin goroutine drives ≥100 hot-reload cycles, a quarter of
// them against corrupt files. Every 200 response must carry a generation
// tag whose prediction matches it exactly — the HTTP-level torn-read
// check.
func TestHTTPChaosReloadStorm(t *testing.T) {
	check.NoLeaks(t)
	const goodCycles = 100
	mem := fault.NewMemFS()
	if err := netio.SaveFileFS(mem, "models/m.pss", testSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	models, err := registry.New(versionBuilder, 4, registry.WithFS(mem))
	if err != nil {
		t.Fatal(err)
	}
	if rep := models.Rescan("models"); rep.Failed() != 0 {
		t.Fatalf("seed scan %+v", rep)
	}
	sc := serverConfig{maxBatch: 4, maxInflight: 16, timeout: 10 * time.Second, defaultModel: "m", modelsDir: "models"}
	srv := newTestServer(t, models, nil, sc)

	var (
		published atomic.Uint64
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	published.Store(1)

	const readers = 4
	readerErr := make([]error, readers)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			var lastGen uint64
			client := &http.Client{Timeout: 10 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(srv.URL+"/models/m/classify", "application/json", strings.NewReader(`{"images": [[1,0,0]]}`))
				if err != nil {
					readerErr[rd] = err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					readerErr[rd] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				var out classifyResponse
				if err := json.Unmarshal(body, &out); err != nil {
					readerErr[rd] = err
					return
				}
				switch {
				case out.Model != "m":
					readerErr[rd] = fmt.Errorf("response model %q", out.Model)
					return
				case out.Generation < lastGen:
					readerErr[rd] = fmt.Errorf("generation went backwards: %d after %d", out.Generation, lastGen)
					return
				case out.Generation > published.Load():
					readerErr[rd] = fmt.Errorf("generation %d was never published", out.Generation)
					return
				case uint64(out.Predictions[0].Winner) != out.Generation:
					readerErr[rd] = fmt.Errorf("torn response: version %d under generation tag %d", out.Predictions[0].Winner, out.Generation)
					return
				}
				lastGen = out.Generation
			}
		}(rd)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	reload := func() (int, []byte) {
		resp, err := client.Post(srv.URL+"/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	for cycle := 2; cycle <= goodCycles+1; cycle++ {
		if cycle%4 == 0 {
			// Hostile publish first: torn file must be rejected with the old
			// generation serving.
			if err := netio.SaveFileFS(mem, "models/m.pss", testSnapshot(9999)); err != nil {
				t.Fatal(err)
			}
			mem.Truncate("models/m.pss", 16+cycle%24)
			if status, body := reload(); status != http.StatusInternalServerError {
				t.Fatalf("torn reload status %d: %s", status, body)
			}
		}
		if err := netio.SaveFileFS(mem, "models/m.pss", testSnapshot(cycle)); err != nil {
			t.Fatal(err)
		}
		published.Store(uint64(cycle))
		if status, body := reload(); status != http.StatusOK {
			t.Fatalf("cycle %d reload status %d: %s", cycle, status, body)
		}
	}
	close(stop)
	wg.Wait()
	for rd, err := range readerErr {
		if err != nil {
			t.Errorf("reader %d: %v", rd, err)
		}
	}
	if m, ok := models.Get("m"); !ok || m.Gen != goodCycles+1 {
		t.Fatalf("final generation %d, want %d", m.Gen, goodCycles+1)
	}
}

// TestServeTrainedModelEndToEnd trains a tiny model, saves it, serves it
// through the real builder and registry, classifies over HTTP, and
// hot-reloads a retrained snapshot — the in-process version of
// scripts/psserve-smoke.sh and psserve-chaos.sh.
func TestServeTrainedModelEndToEnd(t *testing.T) {
	check.NoLeaks(t)
	const (
		preset  = "8bit"
		rule    = "stochastic"
		seedV   = uint64(7)
		tlearn  = 80.0
		classes = 10
	)
	kind, err := synapse.ParseRule(rule)
	if err != nil {
		t.Fatal(err)
	}
	syn, band, err := synapse.PresetConfig(synapse.Preset(preset), kind)
	if err != nil {
		t.Fatal(err)
	}
	syn.Seed = seedV
	data := dataset.SynthDigits(6, seedV)
	cfg := network.DefaultConfig(data.Pixels(), 12, syn)
	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := encode.Control{Band: encode.Band{MinHz: band.MinHz, MaxHz: band.MaxHz}, TLearnMS: tlearn}
	resp := make([][]int, cfg.NumNeurons)
	for i := range resp {
		resp[i] = make([]int, classes)
	}
	for i := 0; i < data.Len(); i++ {
		res, err := net.Present(data.Images[i], ctl, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		for n, c := range res.SpikeCounts {
			resp[n][data.Labels[i]] += c
		}
	}
	// Labeled via the shared assignment rule; neurons that stayed silent in
	// six images remain -1, which a servable snapshot permits.
	assignments := learn.Assign(resp)
	model := &learn.Model{Assignments: assignments, Responses: resp, NumClasses: classes}
	path := filepath.Join(t.TempDir(), "model.pss")
	if err := netio.SaveFile(path, netio.Capture(net, model)); err != nil {
		t.Fatal(err)
	}

	exec := engine.New(2)
	defer exec.Close()
	reg := obs.NewRegistry()
	build, err := newBuilder(rule, preset, "", seedV, classes, tlearn, exec, reg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := registry.New(build, classes, registry.WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := models.Load("default", path); err != nil {
		t.Fatal(err)
	}
	eng, _ := models.Get("default")
	srv := newTestServer(t, models, reg, serverConfig{maxBatch: 8, maxInflight: 2, timeout: 10 * time.Second, defaultModel: "default"})

	body, err := json.Marshal(classifyRequest{Images: data.Images[:3]})
	if err != nil {
		t.Fatal(err)
	}
	httpResp, respBody := postClassify(t, srv.URL, string(body))
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", httpResp.StatusCode, respBody)
	}
	var out classifyResponse
	if err := json.Unmarshal(respBody, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Predictions) != 3 {
		t.Fatalf("%d predictions, want 3", len(out.Predictions))
	}
	if out.Model != "default" || out.Generation != 1 {
		t.Fatalf("response tagged %q gen %d", out.Model, out.Generation)
	}
	// Served predictions match the engine's direct batch path (determinism
	// over HTTP).
	direct, err := eng.Engine.PredictBatch(data.Images[:3])
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if out.Predictions[i].Class != direct[i].Class || out.Predictions[i].Winner != direct[i].Winner {
			t.Fatalf("prediction %d over HTTP %+v, direct %+v", i, out.Predictions[i], direct[i])
		}
	}

	// Admin hot-reload of the same file: generation 2, identical answers.
	reloadResp, err := http.Post(srv.URL+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	reloadBody, _ := io.ReadAll(reloadResp.Body)
	reloadResp.Body.Close()
	if reloadResp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", reloadResp.StatusCode, reloadBody)
	}
	httpResp2, respBody2 := postClassify(t, srv.URL, string(body))
	if httpResp2.StatusCode != http.StatusOK {
		t.Fatalf("classify after reload: %d", httpResp2.StatusCode)
	}
	var out2 classifyResponse
	if err := json.Unmarshal(respBody2, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.Generation != 2 {
		t.Fatalf("generation %d after reload, want 2", out2.Generation)
	}
	for i := range out.Predictions {
		if out2.Predictions[i].Class != out.Predictions[i].Class {
			t.Fatalf("prediction %d changed across identical reload: %+v vs %+v", i, out2.Predictions[i], out.Predictions[i])
		}
	}

	metrics, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	prom, err := io.ReadAll(metrics.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"infer_requests_total", "infer_images_total", "psserve_http_requests_total", "registry_swaps_total"} {
		if !strings.Contains(string(prom), metric) {
			t.Fatalf("/metrics exposition missing %s:\n%s", metric, prom)
		}
	}
}
