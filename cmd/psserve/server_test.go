package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parallelspikesim/internal/dataset"
	"parallelspikesim/internal/encode"
	"parallelspikesim/internal/engine"
	"parallelspikesim/internal/infer"
	"parallelspikesim/internal/learn"
	"parallelspikesim/internal/netio"
	"parallelspikesim/internal/network"
	"parallelspikesim/internal/obs"
	"parallelspikesim/internal/synapse"
)

// stubModel is a deterministic fake: class = first pixel mod classes.
type stubModel struct {
	inputs, classes int
	delay           time.Duration
	err             error
}

func (m *stubModel) NumInputs() int  { return m.inputs }
func (m *stubModel) NumClasses() int { return m.classes }

func (m *stubModel) PredictBatch(imgs [][]uint8) ([]infer.Prediction, error) {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	if m.err != nil {
		return nil, m.err
	}
	out := make([]infer.Prediction, len(imgs))
	for i, img := range imgs {
		out[i] = infer.Prediction{Class: int(img[0]) % m.classes, Winner: 0, Spikes: 1, Votes: make([]int, m.classes)}
	}
	return out, nil
}

func defaultConfig() serverConfig {
	return serverConfig{maxBatch: 4, maxInflight: 2, timeout: 2 * time.Second}
}

func newTestServer(t *testing.T, model classifier, reg *obs.Registry, sc serverConfig) *httptest.Server {
	t.Helper()
	h, err := newHandler(model, reg, sc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func postClassify(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestClassifyEndpoint(t *testing.T) {
	srv := newTestServer(t, &stubModel{inputs: 3, classes: 4}, nil, defaultConfig())
	resp, body := postClassify(t, srv.URL, `{"images": [[2,0,0], [7,0,0]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out classifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if len(out.Predictions) != 2 || out.Predictions[0].Class != 2 || out.Predictions[1].Class != 3 {
		t.Fatalf("predictions %+v, want classes [2 3]", out.Predictions)
	}
}

func TestClassifyRejectsBadPayloads(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newTestServer(t, &stubModel{inputs: 3, classes: 4}, reg, defaultConfig())
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"not json", `pixels please`, http.StatusBadRequest},
		{"empty batch", `{"images": []}`, http.StatusBadRequest},
		{"no images key", `{}`, http.StatusBadRequest},
		{"oversized batch", `{"images": [[0,0,0],[0,0,0],[0,0,0],[0,0,0],[0,0,0]]}`, http.StatusRequestEntityTooLarge},
		{"wrong pixel count", `{"images": [[1,2]]}`, http.StatusBadRequest},
		{"pixel out of uint8 range", `{"images": [[300,0,0]]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postClassify(t, srv.URL, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, body, tc.status)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q not a JSON error", body)
			}
		})
	}
	if v := reg.Counter("psserve_http_rejected_total").Value(); v != uint64(len(cases)) {
		t.Fatalf("rejected counter %d, want %d", v, len(cases))
	}
}

func TestClassifyRejectsOversizedBody(t *testing.T) {
	srv := newTestServer(t, &stubModel{inputs: 3, classes: 4}, nil, defaultConfig())
	huge := fmt.Sprintf(`{"images": [[0,0,0]], "padding": %q}`, bytes.Repeat([]byte{'x'}, 1<<17))
	resp, _ := postClassify(t, srv.URL, huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestClassifyMethodAndHealthz(t *testing.T) {
	srv := newTestServer(t, &stubModel{inputs: 3, classes: 4}, nil, defaultConfig())
	resp, err := http.Get(srv.URL + "/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /classify status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status  string `json:"status"`
		Inputs  int    `json:"inputs"`
		Classes int    `json:"classes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Inputs != 3 || health.Classes != 4 {
		t.Fatalf("healthz %+v", health)
	}
}

func TestClassifyTimeoutPath(t *testing.T) {
	reg := obs.NewRegistry()
	sc := serverConfig{maxBatch: 4, maxInflight: 2, timeout: 30 * time.Millisecond}
	srv := newTestServer(t, &stubModel{inputs: 3, classes: 4, delay: 500 * time.Millisecond}, reg, sc)
	resp, body := postClassify(t, srv.URL, `{"images": [[1,0,0]]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	if v := reg.Counter("psserve_http_timeouts_total").Value(); v != 1 {
		t.Fatalf("timeout counter %d, want 1", v)
	}
}

func TestClassifySaturationShedsLoad(t *testing.T) {
	// One slow request holds the single inflight slot; the second cannot get
	// a slot before its deadline and must be shed with 503, not queued.
	slow := &stubModel{inputs: 3, classes: 4, delay: 400 * time.Millisecond}
	sc := serverConfig{maxBatch: 4, maxInflight: 1, timeout: 100 * time.Millisecond}
	srv := newTestServer(t, slow, nil, sc)
	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/classify", "application/json", strings.NewReader(`{"images": [[1,0,0]]}`))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the first request take the slot
	resp, body := postClassify(t, srv.URL, `{"images": [[1,0,0]]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request status %d (%s), want 503", resp.StatusCode, body)
	}
	if code := <-first; code != http.StatusServiceUnavailable {
		// The first request also overruns the 100 ms deadline (its forward
		// pass takes 400 ms), so both are 503 — what matters is neither hung.
		t.Fatalf("first request status %d, want 503", code)
	}
}

func TestClassifyModelError(t *testing.T) {
	srv := newTestServer(t, &stubModel{inputs: 3, classes: 4, err: errors.New("boom")}, nil, defaultConfig())
	resp, _ := postClassify(t, srv.URL, `{"images": [[1,0,0]]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
}

func TestHandlerRejectsBadConfig(t *testing.T) {
	m := &stubModel{inputs: 3, classes: 4}
	for _, sc := range []serverConfig{
		{maxBatch: 0, maxInflight: 1, timeout: time.Second},
		{maxBatch: 1, maxInflight: 0, timeout: time.Second},
		{maxBatch: 1, maxInflight: 1, timeout: 0},
	} {
		if _, err := newHandler(m, nil, sc); err == nil {
			t.Fatalf("config %+v accepted", sc)
		}
	}
}

// TestServeTrainedModelEndToEnd trains a tiny model, saves it, serves it
// through the real buildEngine path and classifies over HTTP — the
// in-process version of scripts/psserve-smoke.sh.
func TestServeTrainedModelEndToEnd(t *testing.T) {
	const (
		preset  = "8bit"
		rule    = "stochastic"
		seedV   = uint64(7)
		tlearn  = 80.0
		classes = 10
	)
	kind, err := synapse.ParseRule(rule)
	if err != nil {
		t.Fatal(err)
	}
	syn, band, err := synapse.PresetConfig(synapse.Preset(preset), kind)
	if err != nil {
		t.Fatal(err)
	}
	syn.Seed = seedV
	data := dataset.SynthDigits(6, seedV)
	cfg := network.DefaultConfig(data.Pixels(), 12, syn)
	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := encode.Control{Band: encode.Band{MinHz: band.MinHz, MaxHz: band.MaxHz}, TLearnMS: tlearn}
	resp := make([][]int, cfg.NumNeurons)
	for i := range resp {
		resp[i] = make([]int, classes)
	}
	for i := 0; i < data.Len(); i++ {
		res, err := net.Present(data.Images[i], ctl, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		for n, c := range res.SpikeCounts {
			resp[n][data.Labels[i]] += c
		}
	}
	// Labeled via the shared assignment rule; neurons that stayed silent in
	// six images remain -1, which a servable snapshot permits.
	assignments := learn.Assign(resp)
	model := &learn.Model{Assignments: assignments, Responses: resp, NumClasses: classes}
	path := filepath.Join(t.TempDir(), "model.pss")
	if err := netio.SaveFile(path, netio.Capture(net, model)); err != nil {
		t.Fatal(err)
	}

	exec := engine.New(2)
	defer exec.Close()
	reg := obs.NewRegistry()
	eng, err := buildEngine(path, rule, preset, "", seedV, classes, tlearn, exec, reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, eng, reg, serverConfig{maxBatch: 8, maxInflight: 2, timeout: 10 * time.Second})

	body, err := json.Marshal(classifyRequest{Images: data.Images[:3]})
	if err != nil {
		t.Fatal(err)
	}
	httpResp, respBody := postClassify(t, srv.URL, string(body))
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", httpResp.StatusCode, respBody)
	}
	var out classifyResponse
	if err := json.Unmarshal(respBody, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Predictions) != 3 {
		t.Fatalf("%d predictions, want 3", len(out.Predictions))
	}
	// Served predictions match the engine's direct batch path (determinism
	// over HTTP).
	direct, err := eng.PredictBatch(data.Images[:3])
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if out.Predictions[i].Class != direct[i].Class || out.Predictions[i].Winner != direct[i].Winner {
			t.Fatalf("prediction %d over HTTP %+v, direct %+v", i, out.Predictions[i], direct[i])
		}
	}

	metrics, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	prom, err := io.ReadAll(metrics.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"infer_requests_total", "infer_images_total", "psserve_http_requests_total"} {
		if !strings.Contains(string(prom), metric) {
			t.Fatalf("/metrics exposition missing %s:\n%s", metric, prom)
		}
	}
}
