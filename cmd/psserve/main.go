// Command psserve serves a trained ParallelSpikeSim model over HTTP: the
// frozen-weight inference engine (internal/infer) behind a small JSON API.
//
// The model file is a PSS2 snapshot saved by pssim with -save after training
// and labeling; psserve refuses unlabeled or corrupt snapshots at startup.
// The electrical constants are rebuilt from the same preset flags pssim
// trains with, so serve with the flags you trained with:
//
//	pssim  -preset highfreq -rule stochastic -train 2000 -save model.pss
//	psserve -load model.pss -preset highfreq -rule stochastic
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/classify -d '{"images": [[0,0,…,255]]}'
//	curl -s localhost:8080/metrics | grep infer_requests_total
//
// Classification is deterministic: the same pixels always produce the same
// prediction, regardless of request interleaving or worker count. Request
// cost is bounded by -max-batch, -max-inflight and -timeout; SIGINT/SIGTERM
// drain inflight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parallelspikesim/internal/encode"
	"parallelspikesim/internal/engine"
	"parallelspikesim/internal/fixed"
	"parallelspikesim/internal/infer"
	"parallelspikesim/internal/netio"
	"parallelspikesim/internal/network"
	"parallelspikesim/internal/obs"
	"parallelspikesim/internal/synapse"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		load     = flag.String("load", "", "trained PSS2 snapshot to serve (required)")
		rule     = flag.String("rule", "stochastic", "learning rule the model was trained with: deterministic | stochastic")
		preset   = flag.String("preset", "float32", "Table I preset the model was trained with: 2bit|4bit|8bit|16bit|float32|highfreq")
		rounding = flag.String("rounding", "", "rounding override used at training time: truncation | nearest | stochastic")
		seed     = flag.Uint64("seed", 7, "master seed the model was trained with")
		classes  = flag.Int("classes", 10, "class arity of the label table")
		tlearn   = flag.Float64("tlearn", 0, "presentation time ms (0 = preset)")
		workers  = flag.Int("workers", 0, "engine workers for batch fan-out (0 = GOMAXPROCS, 1 = sequential)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request deadline")
		maxBatch = flag.Int("max-batch", 256, "images per /classify request")
		inflight = flag.Int("max-inflight", 4, "concurrent classification requests")
	)
	flag.Parse()
	if err := run(*addr, *load, *rule, *preset, *rounding, *seed, *classes, *tlearn, *workers,
		serverConfig{maxBatch: *maxBatch, maxInflight: *inflight, timeout: *timeout}); err != nil {
		fmt.Fprintln(os.Stderr, "psserve:", err)
		os.Exit(1)
	}
}

// buildEngine loads the snapshot and assembles the inference engine exactly
// as pssim's serving-path evaluation does, so served predictions match the
// accuracy pssim reported.
func buildEngine(load, rule, preset, rounding string, seed uint64, classes int, tlearn float64,
	exec engine.Executor, reg *obs.Registry) (*infer.Engine, error) {

	if load == "" {
		return nil, errors.New("-load is required: train a model with `pssim -save model.pss` first")
	}
	kind, err := synapse.ParseRule(rule)
	if err != nil {
		return nil, err
	}
	syn, band, err := synapse.PresetConfig(synapse.Preset(preset), kind)
	if err != nil {
		return nil, err
	}
	if rounding != "" {
		r, err := fixed.ParseRounding(rounding)
		if err != nil {
			return nil, err
		}
		syn.Rounding = r
	}
	syn.Seed = seed

	snap, err := netio.LoadInferenceFile(load, classes)
	if err != nil {
		return nil, err
	}
	cfg := network.DefaultConfig(snap.NumInputs, snap.NumNeurons, syn)
	ctl := encode.Control{Band: encode.Band{MinHz: band.MinHz, MaxHz: band.MaxHz}, TLearnMS: encode.BaselineControl().TLearnMS}
	if preset == string(synapse.PresetHighFreq) {
		ctl = encode.HighFrequencyControl()
	}
	if tlearn > 0 {
		ctl.TLearnMS = tlearn
	}
	return infer.FromSnapshot(snap, cfg, ctl, classes,
		infer.WithExecutor(exec), infer.WithObserver(reg))
}

func run(addr, load, rule, preset, rounding string, seed uint64, classes int, tlearn float64,
	workers int, sc serverConfig) error {

	w := workers
	if w == 0 {
		w = engine.Auto // CLI convention: 0 means all cores
	}
	exec := engine.New(w)
	defer exec.Close()
	reg := obs.NewRegistry()
	engine.Instrument(exec, reg)

	eng, err := buildEngine(load, rule, preset, rounding, seed, classes, tlearn, exec, reg)
	if err != nil {
		return err
	}
	handler, err := newHandler(eng, reg, sc)
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       sc.timeout,
		// Responses are small; the write window covers the request deadline
		// plus serialization.
		WriteTimeout: sc.timeout + 5*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("psserve: serving %s (%d inputs × %d neurons, %d classes) on %s\n",
		load, eng.NumInputs(), eng.NumNeurons(), eng.NumClasses(), addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("psserve: shutting down, draining inflight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), sc.timeout+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
