// Command psserve serves trained ParallelSpikeSim models over HTTP: frozen-
// weight inference engines (internal/infer) behind a fault-tolerant model
// registry (internal/registry) and a small JSON API.
//
// Models are PSS2 snapshots saved by pssim with -save after training and
// labeling; psserve refuses unlabeled or corrupt snapshots. The electrical
// constants are rebuilt from the same preset flags pssim trains with, so
// serve with the flags you trained with:
//
//	pssim  -preset highfreq -rule stochastic -train 2000 -save model.pss
//	psserve -load model.pss -preset highfreq -rule stochastic
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/classify -d '{"images": [[0,0,…,255]]}'
//	curl -s localhost:8080/metrics | grep infer_requests_total
//
// With -models DIR instead of -load, every *.pss file in DIR is served as
// a named model under /models/{name}/classify (the file a.pss becomes
// model "a"); -model picks which of them /classify aliases. POST /reload
// — or SIGHUP — rescans the snapshots and atomically hot-swaps any that
// changed: a retrained file becomes the next generation with zero dropped
// requests, and a corrupt or torn file is rejected while the previous
// generation keeps serving. Responses carry the model name and generation
// so clients can audit exactly which snapshot answered.
//
// With -learn, psserve also trains while it serves: POST
// /models/{name}/learn feeds labeled examples to a continual trainer
// (internal/continual) that emits a candidate checkpoint every K examples,
// shadow-evaluates it against the live generation on mirrored traffic, and
// hot-promotes it through the registry when it clears the accuracy gate.
// POST /models/{name}/tune moves the encode band, K and the gate at
// runtime; GET /models/{name}/learn reports the promotion audit trail.
//
// Classification is deterministic: the same pixels against the same
// generation always produce the same prediction, regardless of request
// interleaving or worker count. Request cost is bounded by -max-batch,
// -max-inflight and -timeout; under saturation the server degrades in
// rungs (shrink deadline, shed low-priority, 503) instead of falling off a
// cliff; SIGINT/SIGTERM drain inflight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"parallelspikesim/internal/continual"
	"parallelspikesim/internal/encode"
	"parallelspikesim/internal/engine"
	"parallelspikesim/internal/fixed"
	"parallelspikesim/internal/infer"
	"parallelspikesim/internal/learn"
	"parallelspikesim/internal/netio"
	"parallelspikesim/internal/network"
	"parallelspikesim/internal/obs"
	"parallelspikesim/internal/registry"
	"parallelspikesim/internal/synapse"
)

// options collects every knob main parses; run consumes it whole.
type options struct {
	addr      string
	load      string // single snapshot to serve (mutually exclusive with modelsDir)
	modelsDir string // directory of *.pss snapshots to serve by name
	modelName string // registry name for -load / default model for /classify

	rule     string
	preset   string
	rounding string
	seed     uint64
	classes  int
	tlearn   float64
	workers  int

	sc serverConfig

	learn         bool    // enable train-while-serve for the default model
	learnDir      string  // checkpoint dir ("" = models dir, else dir of -load)
	learnEvery    int     // candidate cadence K
	learnQueue    int     // ingest queue bound
	learnShadow   int     // mirrored-sample size for shadow eval
	learnMinDelta float64 // promotion gate accuracy delta
	learnMinHz    float64 // initial encode band override (0 = preset band)
	learnMaxHz    float64

	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	idleTimeout       time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.load, "load", "", "trained PSS2 snapshot to serve (this or -models is required)")
	flag.StringVar(&o.modelsDir, "models", "", "directory of *.pss snapshots to serve as named models")
	flag.StringVar(&o.modelName, "model", "default", "model name for -load, and the model /classify resolves to")
	flag.StringVar(&o.rule, "rule", "stochastic", "learning rule the models were trained with: deterministic | stochastic")
	flag.StringVar(&o.preset, "preset", "float32", "Table I preset the models were trained with: 2bit|4bit|8bit|16bit|float32|highfreq")
	flag.StringVar(&o.rounding, "rounding", "", "rounding override used at training time: truncation | nearest | stochastic")
	flag.Uint64Var(&o.seed, "seed", 7, "master seed the models were trained with")
	flag.IntVar(&o.classes, "classes", 10, "class arity of the label tables")
	flag.Float64Var(&o.tlearn, "tlearn", 0, "presentation time ms (0 = preset)")
	flag.IntVar(&o.workers, "workers", 0, "engine workers for batch fan-out (0 = GOMAXPROCS, 1 = sequential)")
	flag.DurationVar(&o.sc.timeout, "timeout", 10*time.Second, "healthy per-request deadline (the ladder may shrink it under load)")
	flag.IntVar(&o.sc.maxBatch, "max-batch", 256, "images per /classify request")
	flag.IntVar(&o.sc.maxInflight, "max-inflight", 4, "concurrent classification requests")
	flag.IntVar(&o.sc.shrinkAt, "shrink-at", 0, "busy slots at which the deadline shrinks (0 = half of -max-inflight)")
	flag.BoolVar(&o.learn, "learn", false, "enable train-while-serve: POST /models/{name}/learn feeds the default model's continual trainer")
	flag.StringVar(&o.learnDir, "learn-dir", "", "directory for continual-learning checkpoints (default: -models dir, else the -load snapshot's dir)")
	flag.IntVar(&o.learnEvery, "learn-every", 64, "emit and shadow-evaluate a candidate every K trained examples")
	flag.IntVar(&o.learnQueue, "learn-queue", 256, "bounded ingest queue size; overflow is shed with 429")
	flag.IntVar(&o.learnShadow, "learn-shadow", 64, "mirrored traffic sample size for shadow evaluation")
	flag.Float64Var(&o.learnMinDelta, "learn-min-delta", 0, "promotion gate: candidate accuracy must beat live by at least this delta")
	flag.Float64Var(&o.learnMinHz, "learn-min-hz", 0, "initial encode band lower edge for online training (0 = preset band)")
	flag.Float64Var(&o.learnMaxHz, "learn-max-hz", 0, "initial encode band upper edge for online training (0 = preset band)")
	flag.DurationVar(&o.readHeaderTimeout, "read-header-timeout", 5*time.Second, "time a client gets to send the request headers")
	flag.DurationVar(&o.readTimeout, "read-timeout", 15*time.Second, "time a client gets to send the whole request")
	flag.DurationVar(&o.idleTimeout, "idle-timeout", 60*time.Second, "time an idle keep-alive connection is kept open")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "psserve:", err)
		os.Exit(1)
	}
}

// presetSetup compiles the preset flags into the synapse configuration and
// encode control every engine — serving or training — is built with. The
// electrical constants are fixed once at startup.
func presetSetup(rule, preset, rounding string, seed uint64, tlearn float64) (synapse.Config, encode.Control, error) {
	kind, err := synapse.ParseRule(rule)
	if err != nil {
		return synapse.Config{}, encode.Control{}, err
	}
	syn, band, err := synapse.PresetConfig(synapse.Preset(preset), kind)
	if err != nil {
		return synapse.Config{}, encode.Control{}, err
	}
	if rounding != "" {
		r, err := fixed.ParseRounding(rounding)
		if err != nil {
			return synapse.Config{}, encode.Control{}, err
		}
		syn.Rounding = r
	}
	syn.Seed = seed
	ctl := encode.Control{Band: encode.Band{MinHz: band.MinHz, MaxHz: band.MaxHz}, TLearnMS: encode.BaselineControl().TLearnMS}
	if preset == string(synapse.PresetHighFreq) {
		ctl = encode.HighFrequencyControl()
	}
	if tlearn > 0 {
		ctl.TLearnMS = tlearn
	}
	return syn, ctl, nil
}

// newBuilder compiles the preset flags into a registry.Builder: every
// (re)loaded snapshot is assembled into an engine exactly as pssim's
// serving-path evaluation does, so served predictions match the accuracy
// pssim reported.
func newBuilder(rule, preset, rounding string, seed uint64, classes int, tlearn float64,
	exec engine.Executor, reg *obs.Registry) (registry.Builder, error) {

	syn, ctl, err := presetSetup(rule, preset, rounding, seed, tlearn)
	if err != nil {
		return nil, err
	}
	return func(snap *netio.Snapshot) (registry.Engine, error) {
		cfg := network.DefaultConfig(snap.NumInputs, snap.NumNeurons, syn)
		return infer.FromSnapshot(snap, cfg, ctl, classes,
			infer.WithExecutor(exec), infer.WithObserver(reg))
	}, nil
}

// newLearner builds, from the same preset flags the serving engines use, a
// continual trainer seeded with the default model's snapshot. The trainer
// gets a private network (lazy plasticity, sequential executor) so online
// presentations never contend with batch fan-out, and its checkpoints —
// base replay anchor and candidates — live in o.learnDir.
func newLearner(o options, models *registry.Registry, reg *obs.Registry) (*continual.Trainer, error) {
	m, ok := models.Get(o.modelName)
	if !ok {
		return nil, fmt.Errorf("learn: default model %q is not loaded", o.modelName)
	}
	if m.Path == "" {
		return nil, fmt.Errorf("learn: model %q has no backing snapshot", o.modelName)
	}
	base, err := netio.LoadFile(m.Path)
	if err != nil {
		return nil, fmt.Errorf("learn: loading base snapshot: %w", err)
	}
	syn, ctl, err := presetSetup(o.rule, o.preset, o.rounding, o.seed, o.tlearn)
	if err != nil {
		return nil, err
	}
	dir := o.learnDir
	if dir == "" {
		dir = o.modelsDir
	}
	if dir == "" {
		dir = filepath.Dir(o.load)
	}
	tune := continual.DefaultTune()
	tune.MinHz, tune.MaxHz = ctl.Band.MinHz, ctl.Band.MaxHz
	if o.learnMinHz > 0 {
		tune.MinHz = o.learnMinHz
	}
	if o.learnMaxHz > 0 {
		tune.MaxHz = o.learnMaxHz
	}
	tune.EmitEvery = o.learnEvery
	tune.MinDelta = o.learnMinDelta
	tune.ShadowSample = o.learnShadow

	lopts := learn.DefaultOptions()
	lopts.Control = ctl
	lopts.NumClasses = o.classes
	cfg := continual.Config{
		Name:      o.modelName,
		Dir:       dir,
		QueueSize: o.learnQueue,
		Tune:      tune,
	}
	netCfg := network.DefaultConfig(base.NumInputs, base.NumNeurons, syn)
	return continual.New(cfg, netCfg, lopts, base, models, continual.WithObserver(reg))
}

// loadModels seeds the registry: a directory scan in -models mode, one
// named load in -load mode. At least one model must come up servable.
func loadModels(models *registry.Registry, o options) error {
	if o.load != "" && o.modelsDir != "" {
		return errors.New("use -load or -models, not both")
	}
	if o.modelsDir != "" {
		rep := models.Rescan(o.modelsDir)
		for _, res := range rep {
			if res.Err != nil {
				fmt.Fprintf(os.Stderr, "psserve: skipping model %q: %v\n", res.Name, res.Err)
			}
		}
		if len(models.Names()) == 0 {
			return fmt.Errorf("no servable *%s snapshots in %s", registry.ModelExt, o.modelsDir)
		}
		return nil
	}
	if o.load == "" {
		return errors.New("-load or -models is required: train a model with `pssim -save model.pss` first")
	}
	_, err := models.Load(o.modelName, o.load)
	return err
}

// newHTTPServer hardens the listener against slow clients: a trickling
// sender is cut off by the header/read timeouts and an idle keep-alive
// connection cannot hold a socket forever — without these a slowloris
// client pins connections indefinitely.
func newHTTPServer(addr string, h http.Handler, o options) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: o.readHeaderTimeout,
		ReadTimeout:       o.readTimeout,
		IdleTimeout:       o.idleTimeout,
		// Responses are small; the write window covers the request deadline
		// plus serialization.
		WriteTimeout: o.sc.timeout + 5*time.Second,
	}
}

func run(o options) error {
	switch {
	case o.readHeaderTimeout <= 0:
		return fmt.Errorf("read-header-timeout %v", o.readHeaderTimeout)
	case o.readTimeout <= 0:
		return fmt.Errorf("read-timeout %v", o.readTimeout)
	case o.idleTimeout <= 0:
		return fmt.Errorf("idle-timeout %v", o.idleTimeout)
	}
	w := o.workers
	if w == 0 {
		w = engine.Auto // CLI convention: 0 means all cores
	}
	exec := engine.New(w)
	defer exec.Close()
	reg := obs.NewRegistry()
	engine.Instrument(exec, reg)

	build, err := newBuilder(o.rule, o.preset, o.rounding, o.seed, o.classes, o.tlearn, exec, reg)
	if err != nil {
		return err
	}
	models, err := registry.New(build, o.classes, registry.WithObserver(reg))
	if err != nil {
		return err
	}
	if err := loadModels(models, o); err != nil {
		return err
	}
	learners := map[string]*continual.Trainer{}
	if o.learn {
		tr, err := newLearner(o, models, reg)
		if err != nil {
			return err
		}
		if err := tr.Start(); err != nil {
			return err
		}
		defer tr.Close()
		learners[o.modelName] = tr
		tune := tr.Tune()
		fmt.Printf("psserve: continual learning enabled for %q (band %g-%g Hz, K=%d, gate %+g, shadow %d)\n",
			o.modelName, tune.MinHz, tune.MaxHz, tune.EmitEvery, tune.MinDelta, tune.ShadowSample)
	}

	o.sc.defaultModel = o.modelName
	o.sc.modelsDir = o.modelsDir
	handler, err := newHandler(models, learners, reg, o.sc)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	srv := newHTTPServer(o.addr, handler, o)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP is the operator's hot-reload: rescan the snapshots and swap in
	// whatever validates, exactly like POST /reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			rep := models.Rescan(o.modelsDir)
			for _, res := range rep {
				if res.Err != nil {
					fmt.Printf("psserve: SIGHUP reload %q failed (generation %d keeps serving): %v\n", res.Name, res.Gen, res.Err)
				} else {
					fmt.Printf("psserve: SIGHUP reload %q now at generation %d\n", res.Name, res.Gen)
				}
			}
		}
	}()

	for _, m := range models.Models() {
		fmt.Printf("psserve: serving model %q generation %d (%d inputs, %d classes) from %s\n",
			m.Name, m.Gen, m.Engine.NumInputs(), m.Engine.NumClasses(), m.Path)
	}
	fmt.Printf("psserve: listening on %s\n", o.addr)

	err = serve(ctx, srv, ln, o.sc.timeout+5*time.Second)
	if err == nil {
		fmt.Println("psserve: drained, bye")
	}
	return err
}

// serve runs srv on ln until ctx is canceled, then shuts down gracefully:
// the listener closes (new connections are refused), inflight requests get
// up to drain to finish, and only then does serve return. Extracted from
// run so the drain contract is testable without signals.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("psserve: shutting down, draining inflight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
