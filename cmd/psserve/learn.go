package main

import (
	"errors"
	"io"
	"net/http"

	"parallelspikesim/internal/continual"
)

// learnResponse reports how a learn batch fared against the bounded ingest
// queue: accepted examples will be trained (at-most-once); dropped ones
// were shed because the trainer is falling behind and should be resubmitted
// after backoff.
type learnResponse struct {
	Model    string `json:"model"`
	Accepted int    `json:"accepted"`
	Dropped  int    `json:"dropped"`
}

// learner resolves the continual trainer for a model name. A model can be
// served without being trainable, so this is a separate namespace from the
// registry.
func (s *server) learner(w http.ResponseWriter, name string) *continual.Trainer {
	tr, ok := s.learners[name]
	if !ok {
		s.fail(w, http.StatusNotFound, "model %q is not accepting training traffic (start psserve with -learn)", name)
		return nil
	}
	return tr
}

// handleLearn is POST/GET /models/{name}/learn: POST feeds labeled examples
// into the model's continual trainer, GET reports its status and recent
// audit trail. Ingest never blocks the request: a full queue sheds the
// overflow with 429 so serving latency can never wait on training.
func (s *server) handleLearn(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	tr := s.learner(w, r.PathValue("name"))
	if tr == nil {
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{
			"status": tr.Status(),
			"audits": tr.Audits(),
		})
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody(tr.NumInputs())))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.fail(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
				return
			}
			s.fail(w, http.StatusBadRequest, "reading request: %v", err)
			return
		}
		examples, err := continual.ParseLearnRequest(body, tr.NumInputs(), tr.NumClasses(), s.cfg.maxBatch)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp := learnResponse{Model: tr.Name()}
		for _, ex := range examples {
			if err := tr.Submit(ex.Image, ex.Label); err != nil {
				// Only queue pressure gets here: geometry and labels were
				// validated by the parse above.
				resp.Dropped++
				continue
			}
			resp.Accepted++
		}
		status := http.StatusAccepted
		if resp.Dropped > 0 {
			status = http.StatusTooManyRequests
			s.learnShed.Add(uint64(resp.Dropped))
		}
		writeJSON(w, status, resp)
	default:
		s.fail(w, http.StatusMethodNotAllowed, "use POST or GET")
	}
}

// handleTune is POST/GET /models/{name}/tune: the runtime knobs of the
// continual trainer — the 5–78 Hz encode band, the candidate cadence K and
// the promotion gate. POST applies a partial JSON patch; absent fields keep
// their value, invalid or non-finite values are rejected atomically (the
// old tune stays in force).
func (s *server) handleTune(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	tr := s.learner(w, r.PathValue("name"))
	if tr == nil {
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, tr.Tune())
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
		if err != nil {
			s.fail(w, http.StatusBadRequest, "reading request: %v", err)
			return
		}
		next, err := continual.ParseTune(tr.Tune(), body)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := tr.SetTune(next); err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.retunes.Inc()
		writeJSON(w, http.StatusOK, next)
	default:
		s.fail(w, http.StatusMethodNotAllowed, "use POST or GET")
	}
}
