package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"parallelspikesim/internal/infer"
	"parallelspikesim/internal/obs"
)

// classifier is the slice of infer.Engine the handlers need. An interface so
// the handler tests can substitute slow or failing models and drive the
// timeout and error paths deterministically.
type classifier interface {
	PredictBatch(imgs [][]uint8) ([]infer.Prediction, error)
	NumInputs() int
	NumClasses() int
}

// serverConfig bounds what one request may cost.
type serverConfig struct {
	maxBatch    int           // images per /classify request
	maxInflight int           // concurrent classification requests
	timeout     time.Duration // per-request deadline
}

func (sc serverConfig) validate() error {
	switch {
	case sc.maxBatch <= 0:
		return fmt.Errorf("psserve: max batch %d", sc.maxBatch)
	case sc.maxInflight <= 0:
		return fmt.Errorf("psserve: max inflight %d", sc.maxInflight)
	case sc.timeout <= 0:
		return fmt.Errorf("psserve: timeout %v", sc.timeout)
	default:
		return nil
	}
}

// maxBody bounds the /classify request body: the batch limit's worth of
// pixels rendered as worst-case JSON numbers ("255,") plus generous framing
// headroom. Anything larger is rejected before it is buffered.
func (sc serverConfig) maxBody(numInputs int) int64 {
	return int64(sc.maxBatch)*int64(numInputs)*4 + 1<<16
}

// classifyRequest is the /classify payload: one row of 8-bit pixels per
// image.
type classifyRequest struct {
	Images [][]uint8 `json:"images"`
}

// classifyResponse carries one prediction per request image, in order.
type classifyResponse struct {
	Predictions []infer.Prediction `json:"predictions"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// server wires the model, its limits and the serving metrics.
type server struct {
	model classifier
	cfg   serverConfig
	sem   chan struct{} // inflight-classification slots

	reqs     *obs.Counter
	rejected *obs.Counter
	timeouts *obs.Counter
	latency  *obs.Timer
}

// newHandler builds the psserve HTTP API over a model:
//
//	POST /classify  {"images": [[pixels…], …]} → {"predictions": […]}
//	GET  /healthz   liveness + model shape
//	GET  /metrics   Prometheus text exposition of reg
//
// Every classification request holds one of maxInflight slots and runs
// under the configured deadline; requests that cannot finish in time get
// 503, oversized or malformed ones 4xx. A nil registry disables metric
// recording but keeps /metrics serving an empty exposition.
func newHandler(model classifier, reg *obs.Registry, sc serverConfig) (http.Handler, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	s := &server{
		model: model,
		cfg:   sc,
		sem:   make(chan struct{}, sc.maxInflight),

		reqs:     reg.Counter("psserve_http_requests_total"),
		rejected: reg.Counter("psserve_http_rejected_total"),
		timeouts: reg.Counter("psserve_http_timeouts_total"),
		latency:  reg.Timer("psserve_http_classify_ns"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", reg.Handler())
	return mux, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already out; an encode failure here can only be a
	// dead connection, which the server loop handles.
	_ = json.NewEncoder(w).Encode(v)
}

func (s *server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.rejected.Inc()
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"inputs":  s.model.NumInputs(),
		"classes": s.model.NumClasses(),
	})
}

func (s *server) handleClassify(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req classifyRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody(s.model.NumInputs()))
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	switch {
	case len(req.Images) == 0:
		s.fail(w, http.StatusBadRequest, "empty batch")
		return
	case len(req.Images) > s.cfg.maxBatch:
		s.fail(w, http.StatusRequestEntityTooLarge, "batch of %d images over the %d limit", len(req.Images), s.cfg.maxBatch)
		return
	}
	for i, img := range req.Images {
		if len(img) != s.model.NumInputs() {
			s.fail(w, http.StatusBadRequest, "image %d has %d pixels, model expects %d", i, len(img), s.model.NumInputs())
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.timeout)
	defer cancel()

	// Bounded concurrency: wait for an inflight slot, but never past the
	// request deadline — a saturated server sheds load with 503 instead of
	// queueing unboundedly.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.timeouts.Inc()
		s.fail(w, http.StatusServiceUnavailable, "server saturated, retry later")
		return
	}

	t := s.latency.Start()
	type outcome struct {
		preds []infer.Prediction
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() { <-s.sem }()
		preds, err := s.model.PredictBatch(req.Images)
		done <- outcome{preds, err}
	}()

	select {
	case out := <-done:
		s.latency.Stop(t)
		if out.err != nil {
			s.fail(w, http.StatusInternalServerError, "classification failed: %v", out.err)
			return
		}
		writeJSON(w, http.StatusOK, classifyResponse{Predictions: out.preds})
	case <-ctx.Done():
		// The forward pass cannot be interrupted mid-presentation; it
		// finishes on its goroutine, releases its slot, and the result is
		// dropped.
		s.latency.Stop(t)
		s.timeouts.Inc()
		s.fail(w, http.StatusServiceUnavailable, "classification exceeded the %v deadline", s.cfg.timeout)
	}
}
