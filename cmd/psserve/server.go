package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"parallelspikesim/internal/continual"
	"parallelspikesim/internal/infer"
	"parallelspikesim/internal/obs"
	"parallelspikesim/internal/registry"
)

// serverConfig bounds what one request may cost and shapes the degradation
// ladder.
type serverConfig struct {
	maxBatch     int           // images per /classify request
	maxInflight  int           // concurrent classification requests
	timeout      time.Duration // healthy per-request deadline
	defaultModel string        // model /classify resolves to
	shrinkAt     int           // ladder rung-1 threshold (0 = maxInflight/2)
	modelsDir    string        // directory /reload and SIGHUP rescan ("" = reload loaded paths)
}

func (sc serverConfig) validate() error {
	switch {
	case sc.maxBatch <= 0:
		return fmt.Errorf("psserve: max batch %d", sc.maxBatch)
	case sc.maxInflight <= 0:
		return fmt.Errorf("psserve: max inflight %d", sc.maxInflight)
	case sc.timeout <= 0:
		return fmt.Errorf("psserve: timeout %v", sc.timeout)
	case sc.defaultModel == "":
		return fmt.Errorf("psserve: empty default model name")
	case sc.shrinkAt < 0 || sc.shrinkAt > sc.maxInflight:
		return fmt.Errorf("psserve: shrink threshold %d outside [0, %d]", sc.shrinkAt, sc.maxInflight)
	default:
		return nil
	}
}

// maxBody bounds the /classify request body: the batch limit's worth of
// pixels rendered as worst-case JSON numbers ("255,") plus generous framing
// headroom. Anything larger is rejected before it is buffered.
func (sc serverConfig) maxBody(numInputs int) int64 {
	return int64(sc.maxBatch)*int64(numInputs)*4 + 1<<16
}

// classifyRequest is the /classify payload: one row of 8-bit pixels per
// image.
type classifyRequest struct {
	Images [][]uint8 `json:"images"`
}

// classifyResponse carries one prediction per request image, in order,
// tagged with the exact model generation that produced every one of them.
// The handler resolves the registry pointer once per request, so the tag
// can never describe a mix of generations.
type classifyResponse struct {
	Model       string             `json:"model"`
	Generation  uint64             `json:"generation"`
	Predictions []infer.Prediction `json:"predictions"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// server wires the model registry, its limits, the degradation ladder and
// the serving metrics.
type server struct {
	models   *registry.Registry
	learners map[string]*continual.Trainer // per-model continual trainers (may be empty)
	cfg      serverConfig
	ladder   *ladder

	reqs      *obs.Counter // psserve_http_requests_total: every request seen
	rejected  *obs.Counter // psserve_http_rejected_total: 4xx/5xx request errors
	timeouts  *obs.Counter // psserve_http_timeouts_total: compute overran the deadline
	reloads   *obs.Counter // psserve_http_reloads_total: admin reloads served
	retunes   *obs.Counter // psserve_http_retunes_total: accepted tune changes
	learnShed *obs.Counter // psserve_http_learn_shed_total: examples shed with 429
	latency   *obs.Timer   // psserve_http_classify_ns
}

// newHandler builds the psserve HTTP API over a model registry:
//
//	POST /classify                  classify against the default model
//	POST /models/{name}/classify    classify against a named model
//	POST /models/{name}/learn       feed labeled examples to the continual trainer
//	GET  /models/{name}/learn       trainer status + promotion audit trail
//	POST /models/{name}/tune        adjust band/K/gate at runtime (GET reads back)
//	POST /reload                    rescan/reload snapshots (admin)
//	GET  /healthz                   liveness + per-model generation and shape
//	GET  /metrics                   Prometheus text exposition of reg
//
// Every classification request resolves one immutable model generation,
// holds one inflight slot, and runs under the degradation ladder's
// deadline; malformed requests get 4xx, overload 503. The rejection,
// compute-timeout and per-rung degradation counters are disjoint: each
// failed request increments exactly one of them. A nil registry disables
// metric recording but keeps /metrics serving an empty exposition.
// learners maps model names to their continual trainers; models without one
// answer the learn/tune routes with 404.
func newHandler(models *registry.Registry, learners map[string]*continual.Trainer, reg *obs.Registry, sc serverConfig) (http.Handler, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	if models == nil {
		return nil, fmt.Errorf("psserve: nil model registry")
	}
	s := &server{
		models:   models,
		learners: learners,
		cfg:      sc,
		ladder:   newLadder(sc, reg),

		reqs:      reg.Counter("psserve_http_requests_total"),
		rejected:  reg.Counter("psserve_http_rejected_total"),
		timeouts:  reg.Counter("psserve_http_timeouts_total"),
		reloads:   reg.Counter("psserve_http_reloads_total"),
		retunes:   reg.Counter("psserve_http_retunes_total"),
		learnShed: reg.Counter("psserve_http_learn_shed_total"),
		latency:   reg.Timer("psserve_http_classify_ns"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/models/{name}/classify", s.handleModelClassify)
	mux.HandleFunc("/models/{name}/learn", s.handleLearn)
	mux.HandleFunc("/models/{name}/tune", s.handleTune)
	mux.HandleFunc("/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", reg.Handler())
	return mux, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already out; an encode failure here can only be a
	// dead connection, which the server loop handles.
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits a JSON error without touching any counter; callers pick
// the one counter their failure class owns.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// fail rejects a request (bad payload, unknown model, wrong method, model
// error) and counts it. Deadline and degradation 503s do NOT go through
// here — their counters are disjoint from the rejection counter.
func (s *server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.rejected.Inc()
	writeError(w, status, format, args...)
}

// healthModel is one model's row in the /healthz report.
type healthModel struct {
	Name       string `json:"name"`
	Generation uint64 `json:"generation"`
	Inputs     int    `json:"inputs"`
	Classes    int    `json:"classes"`
	Path       string `json:"path,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	models := s.models.Models()
	rows := make([]healthModel, len(models))
	for i, m := range models {
		rows[i] = healthModel{
			Name:       m.Name,
			Generation: m.Gen,
			Inputs:     m.Engine.NumInputs(),
			Classes:    m.Engine.NumClasses(),
			Path:       m.Path,
		}
	}
	body := map[string]any{
		"status": "ok",
		"models": rows,
	}
	// The default model's shape also appears top-level, the form the
	// single-model API always had.
	if m, ok := s.models.Get(s.cfg.defaultModel); ok {
		body["model"] = m.Name
		body["generation"] = m.Gen
		body["inputs"] = m.Engine.NumInputs()
		body["classes"] = m.Engine.NumClasses()
	}
	writeJSON(w, http.StatusOK, body)
}

// reloadResult is one model's outcome in the /reload report.
type reloadResult struct {
	Model      string `json:"model"`
	Generation uint64 `json:"generation"`
	Error      string `json:"error,omitempty"`
}

// handleReload rescans the models directory (or reloads every loaded
// snapshot path) and reports per-model outcomes. A failed model keeps its
// previous generation serving, so a partial failure is 500 with a full
// report, never a half-dead server.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	rep := s.models.Rescan(s.cfg.modelsDir)
	s.reloads.Inc()
	out := make([]reloadResult, len(rep))
	for i, res := range rep {
		out[i] = reloadResult{Model: res.Name, Generation: res.Gen}
		if res.Err != nil {
			out[i].Error = res.Err.Error()
		}
	}
	status := http.StatusOK
	if rep.Failed() > 0 {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, map[string]any{"report": out, "failed": rep.Failed()})
}

func (s *server) handleClassify(w http.ResponseWriter, r *http.Request) {
	s.classify(w, r, s.cfg.defaultModel)
}

func (s *server) handleModelClassify(w http.ResponseWriter, r *http.Request) {
	s.classify(w, r, r.PathValue("name"))
}

func (s *server) classify(w http.ResponseWriter, r *http.Request, name string) {
	s.reqs.Inc()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	prio, err := parsePriority(r.Header.Get("X-Priority"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	// One registry resolution serves the whole request: the engine, the
	// generation tag and the input-shape checks below all come from this
	// immutable Model, so a reload racing this request can never tear it.
	m, ok := s.models.Get(name)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown model %q", name)
		return
	}
	var req classifyRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody(m.Engine.NumInputs()))
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	switch {
	case len(req.Images) == 0:
		s.fail(w, http.StatusBadRequest, "empty batch")
		return
	case len(req.Images) > s.cfg.maxBatch:
		s.fail(w, http.StatusRequestEntityTooLarge, "batch of %d images over the %d limit", len(req.Images), s.cfg.maxBatch)
		return
	}
	for i, img := range req.Images {
		if len(img) != m.Engine.NumInputs() {
			s.fail(w, http.StatusBadRequest, "image %d has %d pixels, model %q expects %d", i, len(img), m.Name, m.Engine.NumInputs())
			return
		}
	}

	// Degradation ladder: rung 1 may shrink the deadline at arrival; rungs
	// 2 and 3 decide whether the request gets a slot at all.
	budget, _ := s.ladder.budget(prio)
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	release, err := s.ladder.acquire(ctx, prio)
	switch {
	case errors.Is(err, errShed):
		writeError(w, http.StatusServiceUnavailable, "server saturated, low-priority request shed")
		return
	case err != nil:
		writeError(w, http.StatusServiceUnavailable, "server saturated, no slot within %v", budget)
		return
	}

	t := s.latency.Start()
	type outcome struct {
		preds []infer.Prediction
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		defer release()
		preds, err := m.Engine.PredictBatch(req.Images)
		done <- outcome{preds, err}
	}()

	select {
	case out := <-done:
		s.latency.Stop(t)
		if out.err != nil {
			s.fail(w, http.StatusInternalServerError, "classification failed: %v", out.err)
			return
		}
		writeJSON(w, http.StatusOK, classifyResponse{
			Model:       m.Name,
			Generation:  m.Gen,
			Predictions: out.preds,
		})
	case <-ctx.Done():
		// The forward pass cannot be interrupted mid-presentation; it
		// finishes on its goroutine, releases its slot, and the result is
		// dropped.
		s.latency.Stop(t)
		s.timeouts.Inc()
		writeError(w, http.StatusServiceUnavailable, "classification exceeded the %v deadline", budget)
	}
}
