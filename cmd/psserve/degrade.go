package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"parallelspikesim/internal/obs"
)

// priority is a request's standing in the degradation ladder, set by the
// X-Priority header. Low-priority traffic (batch backfills, shadow reads)
// is the first shed under load; high-priority traffic keeps its full
// deadline for as long as a slot can be found.
type priority int

const (
	prioLow priority = iota
	prioNormal
	prioHigh
)

// parsePriority maps the X-Priority header to a rung. An absent header is
// normal; an unknown value is a client error — a typo in a priority label
// must not silently change shedding behavior.
func parsePriority(h string) (priority, error) {
	switch h {
	case "", "normal":
		return prioNormal, nil
	case "low":
		return prioLow, nil
	case "high":
		return prioHigh, nil
	}
	return prioNormal, fmt.Errorf("unknown X-Priority %q (use low, normal or high)", h)
}

// Sentinel outcomes of ladder admission.
var (
	errShed      = errors.New("psserve: shed low-priority request at saturation")
	errSaturated = errors.New("psserve: no inflight slot within the deadline")
)

// ladder is the server's graduated response to overload, replacing the old
// binary available/503 behavior. The rungs, in escalation order:
//
//	rung 0  healthy            full per-request deadline
//	rung 1  pressure           the effective deadline shrinks (half), so
//	                           queued work drains faster than it arrives;
//	                           high-priority requests are exempt
//	rung 2  saturation         low-priority requests are shed immediately
//	                           with 503 instead of queueing
//	rung 3  sustained          normal/high requests that cannot get a slot
//	        saturation         before their deadline get 503
//
// Every rung is counted in its own obs counter, disjoint from the request
// rejection and compute-timeout counters, so the ladder's engagement is
// directly observable in /metrics.
type ladder struct {
	sem      chan struct{} // inflight-classification slots
	full     time.Duration // healthy per-request deadline
	shrinkAt int           // busy slots at/above which rung 1 engages

	shrunk    *obs.Counter // psserve_degrade_shrunk_total
	shed      *obs.Counter // psserve_degrade_shed_total
	saturated *obs.Counter // psserve_degrade_saturated_total
}

// newLadder sizes the ladder from the server limits. A shrinkAt of zero
// defaults to half the inflight capacity (at least one), so pressure is
// declared while slots remain and the shrunk deadline can still help.
func newLadder(sc serverConfig, reg *obs.Registry) *ladder {
	shrinkAt := sc.shrinkAt
	if shrinkAt == 0 {
		shrinkAt = sc.maxInflight / 2
		if shrinkAt < 1 {
			shrinkAt = 1
		}
	}
	return &ladder{
		sem:      make(chan struct{}, sc.maxInflight),
		full:     sc.timeout,
		shrinkAt: shrinkAt,

		shrunk:    reg.Counter("psserve_degrade_shrunk_total"),
		shed:      reg.Counter("psserve_degrade_shed_total"),
		saturated: reg.Counter("psserve_degrade_saturated_total"),
	}
}

// budget decides the request's total deadline at arrival — rung 1. Under
// pressure (busy slots at or above shrinkAt) the deadline halves for
// everything but high-priority traffic, so the backlog's worst case cost
// shrinks before anything has to be refused.
func (l *ladder) budget(p priority) (time.Duration, bool) {
	if p != prioHigh && len(l.sem) >= l.shrinkAt {
		l.shrunk.Inc()
		return l.full / 2, true
	}
	return l.full, false
}

// acquire takes an inflight slot — rungs 2 and 3. At saturation a
// low-priority request is shed immediately (errShed); others wait until
// ctx — which carries the possibly-shrunk deadline — expires
// (errSaturated). The returned release must be called exactly once, after
// the classification finishes, even if the response has already been
// written.
func (l *ladder) acquire(ctx context.Context, p priority) (release func(), err error) {
	select {
	case l.sem <- struct{}{}:
		return l.releaseFn(), nil
	default:
	}
	if p == prioLow {
		l.shed.Inc()
		return nil, errShed
	}
	select {
	case l.sem <- struct{}{}:
		return l.releaseFn(), nil
	case <-ctx.Done():
		l.saturated.Inc()
		return nil, errSaturated
	}
}

func (l *ladder) releaseFn() func() { return func() { <-l.sem } }
