package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"parallelspikesim/internal/check"
	"parallelspikesim/internal/continual"
	"parallelspikesim/internal/encode"
	"parallelspikesim/internal/fault"
	"parallelspikesim/internal/learn"
	"parallelspikesim/internal/network"
	"parallelspikesim/internal/obs"
	"parallelspikesim/internal/registry"
	"parallelspikesim/internal/synapse"
)

// testLearner is a 9-pixel × 4-class continual trainer on an in-memory
// filesystem. It is deliberately left unstarted: nothing drains the queue,
// so tests control exactly how many submissions fit before shedding.
func testLearner(t *testing.T, queueSize int) *continual.Trainer {
	t.Helper()
	syn, _, err := synapse.PresetConfig(synapse.Preset8Bit, synapse.Stochastic)
	if err != nil {
		t.Fatalf("preset: %v", err)
	}
	syn.Seed = 0x5eed
	netCfg := network.DefaultConfig(9, 4, syn)
	lo := learn.DefaultOptions()
	lo.Control = encode.Control{Band: encode.HighFrequencyBand(), TLearnMS: 20}
	lo.NumClasses = 4
	models, err := registry.New(noBuilder, 4)
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	cfg := continual.Config{Name: "default", Dir: "ckpt", QueueSize: queueSize}
	tr, err := continual.New(cfg, netCfg, lo, nil, models,
		continual.WithFS(fault.NewInjector(fault.NewMemFS())))
	if err != nil {
		t.Fatalf("continual.New: %v", err)
	}
	t.Cleanup(tr.Close)
	return tr
}

func newLearnServer(t *testing.T, tr *continual.Trainer, reg *obs.Registry) *httptest.Server {
	t.Helper()
	models := defaultRegistry(t, &stubModel{inputs: 9, classes: 4})
	h, err := newHandler(models, map[string]*continual.Trainer{"default": tr}, reg, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

const nineZeros = `[0,0,0,0,0,0,0,0,0]`

func TestLearnEndpointAcceptsAndReportsStatus(t *testing.T) {
	check.NoLeaks(t)
	tr := testLearner(t, 64)
	srv := newLearnServer(t, tr, nil)

	resp, body := postJSON(t, srv.URL+"/models/default/learn",
		`{"examples":[{"image":`+nineZeros+`,"label":1},{"image":`+nineZeros+`,"label":3}]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out learnResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if out.Model != "default" || out.Accepted != 2 || out.Dropped != 0 {
		t.Fatalf("response %+v, want 2 accepted for default", out)
	}

	// The shorthand single-example form also lands.
	resp, body = postJSON(t, srv.URL+"/models/default/learn", `{"image":`+nineZeros+`,"label":0}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("shorthand status %d: %s", resp.StatusCode, body)
	}

	// GET reports the trainer's status and audit trail.
	getResp, err := http.Get(srv.URL + "/models/default/learn")
	if err != nil {
		t.Fatal(err)
	}
	getBody, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d: %s", getResp.StatusCode, getBody)
	}
	var report struct {
		Status continual.Status  `json:"status"`
		Audits []continual.Audit `json:"audits"`
	}
	if err := json.Unmarshal(getBody, &report); err != nil {
		t.Fatalf("decoding %s: %v", getBody, err)
	}
	if report.Status.Name != "default" || report.Status.QueueDepth != 3 {
		t.Fatalf("status %+v, want 3 queued for default", report.Status)
	}
}

func TestLearnEndpointShedsWith429(t *testing.T) {
	check.NoLeaks(t)
	tr := testLearner(t, 1) // one slot, no drain: the second example sheds
	reg := obs.NewRegistry()
	srv := newLearnServer(t, tr, reg)

	resp, body := postJSON(t, srv.URL+"/models/default/learn",
		`{"examples":[{"image":`+nineZeros+`,"label":1},{"image":`+nineZeros+`,"label":2}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out learnResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if out.Accepted != 1 || out.Dropped != 1 {
		t.Fatalf("response %+v, want 1 accepted + 1 dropped", out)
	}
	if got := reg.Counter("psserve_http_learn_shed_total").Value(); got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}
}

func TestLearnEndpointRejections(t *testing.T) {
	check.NoLeaks(t)
	tr := testLearner(t, 4)
	srv := newLearnServer(t, tr, nil)

	cases := []struct {
		name, url, body string
		want            int
	}{
		{"unknown model", "/models/ghost/learn", `{"image":` + nineZeros + `,"label":1}`, http.StatusNotFound},
		{"bad json", "/models/default/learn", `{`, http.StatusBadRequest},
		{"wrong pixels", "/models/default/learn", `{"image":[1,2,3],"label":1}`, http.StatusBadRequest},
		{"label out of range", "/models/default/learn", `{"image":` + nineZeros + `,"label":4}`, http.StatusBadRequest},
		{"missing label", "/models/default/learn", `{"image":` + nineZeros + `}`, http.StatusBadRequest},
		{"batch over limit", "/models/default/learn",
			`{"examples":[` + strings.Repeat(`{"image":`+nineZeros+`,"label":0},`, 4) + `{"image":` + nineZeros + `,"label":0}]}`,
			http.StatusBadRequest},
		{"oversized body", "/models/default/learn", `{"examples":[` + strings.Repeat("9", 1<<17), http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, body := postJSON(t, srv.URL+c.url, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.want)
		}
	}
	if got := tr.Status().QueueDepth; got != 0 {
		t.Fatalf("rejected requests leaked %d examples into the queue", got)
	}

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/models/default/learn", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d, want 405", resp.StatusCode)
	}
}

func TestTuneEndpoint(t *testing.T) {
	check.NoLeaks(t)
	tr := testLearner(t, 4)
	reg := obs.NewRegistry()
	srv := newLearnServer(t, tr, reg)

	getResp, err := http.Get(srv.URL + "/models/default/tune")
	if err != nil {
		t.Fatal(err)
	}
	getBody, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	var cur continual.Tune
	if err := json.Unmarshal(getBody, &cur); err != nil {
		t.Fatalf("decoding %s: %v", getBody, err)
	}
	if cur != continual.DefaultTune() {
		t.Fatalf("initial tune %+v, want default", cur)
	}

	// A partial patch moves only the named knobs.
	resp, body := postJSON(t, srv.URL+"/models/default/tune", `{"max_hz":50,"emit_every":8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch status %d: %s", resp.StatusCode, body)
	}
	var next continual.Tune
	if err := json.Unmarshal(body, &next); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if next.MaxHz != 50 || next.EmitEvery != 8 || next.MinHz != cur.MinHz {
		t.Fatalf("patched tune %+v, want max_hz 50, emit_every 8, min_hz untouched", next)
	}
	if got := tr.Tune(); got != next {
		t.Fatalf("trainer tune %+v, response said %+v", got, next)
	}
	if got := reg.Counter("psserve_http_retunes_total").Value(); got != 1 {
		t.Fatalf("retune counter %d, want 1", got)
	}

	// Invalid patches are rejected atomically: the old tune stays in force.
	for _, bad := range []string{`{"emit_every":0}`, `{"min_delta":7}`, `{"max_hz":"fast"}`, `{"typo_knob":1}`, `not json`} {
		resp, body := postJSON(t, srv.URL+"/models/default/tune", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("patch %s: status %d (%s), want 400", bad, resp.StatusCode, body)
		}
	}
	if got := tr.Tune(); got != next {
		t.Fatalf("rejected patch changed the tune: %+v", got)
	}

	// Unknown model.
	resp, _ = postJSON(t, srv.URL+"/models/ghost/tune", `{}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost tune status %d, want 404", resp.StatusCode)
	}
}
