package main

// Startup-path tests: the flag → registry seeding (loadModels) and flag →
// continual trainer (newLearner) compilations run against real files in a
// temp dir, so the serving binary's boot sequence is exercised without
// opening a socket.

import (
	"path/filepath"
	"testing"

	"parallelspikesim/internal/check"
	"parallelspikesim/internal/netio"
	"parallelspikesim/internal/network"
	"parallelspikesim/internal/obs"
	"parallelspikesim/internal/registry"
)

// bootOptions is the flag set a minimal `psserve -learn` invocation would
// produce, minus the address: an 8-bit stochastic preset over a tiny net.
func bootOptions() options {
	var o options
	o.modelName = "default"
	o.rule = "stochastic"
	o.preset = "8bit"
	o.seed = 0x5eed
	o.classes = 4
	o.learnEvery = 8
	o.learnQueue = 16
	o.learnShadow = 8
	o.learnMinDelta = -0.5
	o.learnMinHz = 7
	o.learnMaxHz = 60
	return o
}

// writeBootSnapshot captures a freshly wired network under the boot preset
// and saves it as a servable PSS2 file, exactly what `pssim -save` leaves
// behind for psserve to load.
func writeBootSnapshot(t *testing.T, path string, o options) {
	t.Helper()
	syn, _, err := presetSetup(o.rule, o.preset, o.rounding, o.seed, o.tlearn)
	if err != nil {
		t.Fatalf("preset setup: %v", err)
	}
	net, err := network.New(network.DefaultConfig(9, 4, syn))
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	snap := netio.Capture(net, nil)
	// A servable snapshot needs label assignments; stamp one class per neuron
	// as pssim's labeling pass would.
	snap.Assignments = []int{0, 1, 2, 3}
	if err := netio.SaveFile(path, snap); err != nil {
		t.Fatalf("saving snapshot: %v", err)
	}
}

func bootRegistry(t *testing.T, o options) *registry.Registry {
	t.Helper()
	build, err := newBuilder(o.rule, o.preset, o.rounding, o.seed, o.classes, o.tlearn, nil, nil)
	if err != nil {
		t.Fatalf("builder: %v", err)
	}
	models, err := registry.New(build, o.classes)
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	return models
}

func TestLoadModelsModes(t *testing.T) {
	check.NoLeaks(t)
	dir := t.TempDir()
	o := bootOptions()
	writeBootSnapshot(t, filepath.Join(dir, "default.pss"), o)

	t.Run("load-and-models-conflict", func(t *testing.T) {
		bad := o
		bad.load, bad.modelsDir = "x.pss", dir
		if err := loadModels(bootRegistry(t, bad), bad); err == nil {
			t.Fatal("-load and -models together accepted")
		}
	})
	t.Run("neither-flag", func(t *testing.T) {
		if err := loadModels(bootRegistry(t, o), o); err == nil {
			t.Fatal("startup with no snapshot source accepted")
		}
	})
	t.Run("load-single", func(t *testing.T) {
		single := o
		single.load = filepath.Join(dir, "default.pss")
		models := bootRegistry(t, single)
		if err := loadModels(models, single); err != nil {
			t.Fatalf("loadModels: %v", err)
		}
		m, ok := models.Get("default")
		if !ok || m.Gen != 1 || m.Engine.NumInputs() != 9 {
			t.Fatalf("loaded model %+v, ok=%v", m, ok)
		}
	})
	t.Run("models-dir", func(t *testing.T) {
		scan := o
		scan.modelsDir = dir
		models := bootRegistry(t, scan)
		if err := loadModels(models, scan); err != nil {
			t.Fatalf("loadModels: %v", err)
		}
		if _, ok := models.Get("default"); !ok {
			t.Fatal("rescan did not adopt default.pss")
		}
	})
	t.Run("models-dir-empty", func(t *testing.T) {
		scan := o
		scan.modelsDir = t.TempDir()
		if err := loadModels(bootRegistry(t, scan), scan); err == nil {
			t.Fatal("empty models dir accepted")
		}
	})
}

func TestNewLearnerFromFlags(t *testing.T) {
	check.NoLeaks(t)
	dir := t.TempDir()
	o := bootOptions()
	o.load = filepath.Join(dir, "default.pss")
	writeBootSnapshot(t, o.load, o)
	models := bootRegistry(t, o)

	if _, err := newLearner(o, models, obs.NewRegistry()); err == nil {
		t.Fatal("learner built before any model was loaded")
	}
	if err := loadModels(models, o); err != nil {
		t.Fatalf("loadModels: %v", err)
	}
	tr, err := newLearner(o, models, obs.NewRegistry())
	if err != nil {
		t.Fatalf("newLearner: %v", err)
	}
	defer tr.Close()
	tune := tr.Tune()
	if tune.EmitEvery != o.learnEvery || tune.MinDelta != o.learnMinDelta ||
		tune.ShadowSample != o.learnShadow {
		t.Fatalf("trainer tune %+v does not reflect flags %+v", tune, o)
	}
	if tune.MinHz != o.learnMinHz || tune.MaxHz != o.learnMaxHz {
		t.Fatalf("band overrides lost: %+v", tune)
	}
	// -learn-dir unset and no -models dir: checkpoints land beside -load.
	if got, want := tr.BasePath(), filepath.Join(dir, "default.base.ckpt"); got != want {
		t.Fatalf("base checkpoint at %s, want %s", got, want)
	}

	// A model published without a backing file cannot anchor replay.
	bare := bootRegistry(t, o)
	if _, err := bare.Publish("default", "", &stubModel{inputs: 9, classes: 4}); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if _, err := newLearner(o, bare, obs.NewRegistry()); err == nil {
		t.Fatal("learner accepted a model with no snapshot path")
	}
}
