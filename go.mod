module parallelspikesim

go 1.22
